"""The sharded check service: one accept process, N pipeline workers.

``ppchecker serve --shards N`` splits the single-process service into
a **front** (this module -- a lightweight accept/route process that
never runs a pipeline) and N **shard** processes, each a full
``ppchecker serve`` with its own GIL, worker threads, job journal,
and dead-letter queue.  The front:

- routes every submission by the content hash of its bundle document
  over the consistent-hash ring (:mod:`repro.service.hashring`), so
  identical bundles always land on the same shard and its coalescing
  and redelivery machinery keep working unchanged;
- namespaces shard job ids (``job-3`` on shard 1 becomes ``s1-job-3``)
  so one client-visible id space spans the cluster;
- supervises the shards: a dead shard is respawned, its journal is
  replayed (``--state-dir``), poison pills are dead-lettered within
  the existing redelivery budget, and requests that raced the crash
  are retried against the respawned shard;
- aggregates ``/healthz`` (degraded, not down, while any shard lives)
  and ``/v1/deadletter`` across the cluster, and exposes its own
  ``/metrics`` (routing counters, shard liveness, restarts).

Shards share one artifact database
(:class:`~repro.pipeline.artifacts.SharedDiskStore`, ``--store
sqlite``) when ``--cache-dir`` is set, so a cache hit in one worker
process is a hit in all.
"""

from __future__ import annotations

import json
import os
import queue
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection, HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro import __version__
from repro.core.schema import versioned
from repro.hashing import fingerprint
from repro.pipeline.resilience import Deadline, RetryBudget
from repro.service.breaker import CLOSED, CircuitBreaker, LatencyTracker
from repro.service.hashring import HashRing, shard_name
from repro.service.metrics import CallbackGaugeFamily, MetricsRegistry
from repro.service.runner import shed_error
from repro.service.server import (
    DEADLINE_FIELD,
    DEADLINE_HEADER,
    InvalidDeadline,
    _write_port_file,
    parse_deadline_seconds,
    read_port_file,
)

_JOB_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9_.-]+)$")
_SHARD_ID = re.compile(r"^s(\d+)-(.+)$")


@dataclass
class ClusterConfig:
    """Everything ``ppchecker serve --shards N`` needs.

    Values that configure the shard processes (workers, queue size,
    cache dir, fault plan, ...) are forwarded to each ``serve``
    subprocess as CLI flags, so they are paths and scalars, never
    live objects.
    """

    host: str = "127.0.0.1"
    port: int = 8742
    port_file: str | None = None
    shards: int = 3
    #: worker threads *per shard*
    workers: int = 2
    queue_size: int = 64
    #: shared artifact cache -- every shard points its sqlite
    #: :class:`~repro.pipeline.artifacts.SharedDiskStore` here
    cache_dir: str | None = None
    #: per-shard job journals live in ``<state_dir>/shard-<i>``
    state_dir: str | None = None
    lib_policies: str | None = None
    fault_plan: str | None = None
    max_retries: int = 0
    stage_timeout: float | None = None
    request_timeout: float = 300.0
    drain_timeout: float = 10.0
    max_body_bytes: int = 32 * 1024 * 1024
    max_redeliveries: int = 3
    #: completed-job LRU capacity *per shard* (the cluster resolves
    #: ``shards`` times this many in aggregate)
    completed_jobs: int = 256
    #: memory-tier artifact cache entries *per shard*
    cache_entries: int = 8192
    #: how long the front waits for a respawning shard before failing
    #: a request over to the client
    reroute_timeout: float = 30.0
    #: per-shard fault plan paths (``{shard index: path}``); a listed
    #: shard gets its own plan instead of ``fault_plan`` -- how the
    #: brownout chaos harness browns out exactly one shard of N
    shard_fault_plans: dict[int, str] = field(default_factory=dict)
    #: retry token-bucket capacity, forwarded to every shard
    #: (``--retry-budget``) and shared by the front's own reroute
    #: retries and hedges; None = unlimited, the historical behaviour
    retry_budget: float | None = None
    #: tokens the retry bucket regains per second
    retry_budget_refill: float = 1.0
    #: default per-job deadline forwarded to every shard
    #: (``--deadline``); None = unbounded
    default_deadline: float | None = None
    #: hedge idempotent ``/v1/check`` submissions: race a second shard
    #: when the primary is slower than the p95-derived hedge delay
    hedge: bool = True
    #: hedge delay (seconds) used until the front's latency window
    #: has enough samples to derive a p95
    hedge_delay: float = 1.0
    #: consecutive failures (or brownout-slow successes) that open a
    #: shard's circuit breaker
    breaker_failures: int = 5
    #: a shard success slower than this (seconds) counts as a breaker
    #: failure -- the brownout signal; None disables latency tripping
    breaker_latency: float | None = None
    #: how long an open breaker cools off before its half-open probe
    breaker_cooloff: float = 5.0


class ShardProcess:
    """One supervised ``ppchecker serve`` subprocess."""

    def __init__(self, index: int, config: ClusterConfig,
                 run_dir: str) -> None:
        self.index = index
        self.name = shard_name(index)
        self.config = config
        self.port_file = os.path.join(run_dir, f"{self.name}.port")
        self.port: int | None = None
        self.process: subprocess.Popen | None = None
        self.restarts = 0

    def command(self) -> list[str]:
        config = self.config
        cmd = [sys.executable, "-m", "repro.cli", "serve",
               "--host", config.host,
               "--port", "0", "--port-file", self.port_file,
               "--workers", str(config.workers),
               "--queue-size", str(config.queue_size),
               "--request-timeout", str(config.request_timeout),
               "--drain-timeout", str(config.drain_timeout),
               "--max-redeliveries", str(config.max_redeliveries),
               "--max-retries", str(config.max_retries),
               "--completed-jobs", str(config.completed_jobs),
               "--cache-entries", str(config.cache_entries)]
        if config.cache_dir is not None:
            cmd += ["--cache-dir", config.cache_dir,
                    "--store", "sqlite"]
        if config.state_dir is not None:
            cmd += ["--state-dir",
                    os.path.join(config.state_dir, self.name)]
        if config.lib_policies is not None:
            cmd += ["--lib-policies", config.lib_policies]
        fault_plan = config.shard_fault_plans.get(
            self.index, config.fault_plan)
        if fault_plan is not None:
            cmd += ["--fault-plan", fault_plan]
        if config.stage_timeout is not None:
            cmd += ["--stage-timeout", str(config.stage_timeout)]
        if config.retry_budget is not None:
            cmd += ["--retry-budget", str(config.retry_budget),
                    "--retry-budget-refill",
                    str(config.retry_budget_refill)]
        if config.default_deadline is not None:
            cmd += ["--deadline", str(config.default_deadline)]
        return cmd

    def spawn(self, timeout: float = 60.0) -> None:
        """Start (or restart) the subprocess and wait for its port."""
        if os.path.exists(self.port_file):
            os.unlink(self.port_file)
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        self.process = subprocess.Popen(
            self.command(), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        self.port = read_port_file(self.port_file, timeout=timeout)

    @property
    def alive(self) -> bool:
        return (self.process is not None
                and self.process.poll() is None)

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def terminate(self) -> None:
        if self.alive:
            assert self.process is not None
            self.process.send_signal(signal.SIGTERM)

    def join(self, timeout: float) -> None:
        if self.process is None:
            return
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=10)


class ShardSupervisor:
    """Spawns the shards, keeps the ring current, respawns the dead.

    The monitor thread polls shard liveness; a dead shard leaves the
    ring immediately (submissions re-route or wait), is respawned,
    replays its journal (re-queueing in-flight jobs, dead-lettering
    poison pills over the redelivery budget), and rejoins the ring.
    """

    POLL_INTERVAL = 0.1

    def __init__(self, config: ClusterConfig, run_dir: str,
                 metrics: "FrontMetrics") -> None:
        self.config = config
        self.metrics = metrics
        self.shards = [ShardProcess(i, config, run_dir)
                       for i in range(config.shards)]
        self.ring = HashRing()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._monitor, daemon=True,
            name="ppchecker-shard-supervisor")

    def start(self) -> None:
        for shard in self.shards:
            shard.spawn()
            self.ring.add(shard.name)
        self._thread.start()

    def _monitor(self) -> None:
        while not self._stop.is_set():
            for shard in self.shards:
                if self._stop.is_set():
                    return
                if shard.alive:
                    continue
                with self._lock:
                    self.ring.remove(shard.name)
                try:
                    shard.spawn()
                except (OSError, TimeoutError):
                    # spawn failed; the next poll tries again
                    continue
                shard.restarts += 1
                self.metrics.shard_restarts.inc(shard=shard.name)
                with self._lock:
                    self.ring.add(shard.name)
            self._stop.wait(self.POLL_INTERVAL)

    # -- routing -----------------------------------------------------------

    def route(self, key: str) -> ShardProcess | None:
        """The live shard owning *key*, or None while none are up."""
        with self._lock:
            try:
                name = self.ring.place(key)
            except LookupError:
                return None
        return self.shards[int(name.split("-", 1)[1])]

    def route_preference(self, key: str) -> list[ShardProcess]:
        """Every live shard in deterministic failover order for
        *key* (``[0]`` is the ring owner) -- what breaker-aware
        routing and hedging walk."""
        with self._lock:
            try:
                names = self.ring.preference(key)
            except LookupError:
                return []
        return [self.shards[int(name.split("-", 1)[1])]
                for name in names]

    def shard(self, index: int) -> ShardProcess | None:
        if 0 <= index < len(self.shards):
            return self.shards[index]
        return None

    @property
    def alive(self) -> int:
        return sum(1 for shard in self.shards if shard.alive)

    def stop(self) -> None:
        """Graceful: SIGTERM every shard (they drain their queues),
        join, and stop the monitor so nothing is respawned."""
        self._stop.set()
        self._thread.join(5.0)
        for shard in self.shards:
            shard.terminate()
        deadline = self.config.drain_timeout + 10.0
        for shard in self.shards:
            shard.join(deadline)


class FrontMetrics:
    """The accept process's instrument set (``GET /metrics``)."""

    def __init__(self, supervisor_alive) -> None:
        self.registry = MetricsRegistry()
        r = self.registry
        self.requests = r.counter(
            "ppchecker_front_requests_total",
            "HTTP requests served by the accept process, by "
            "endpoint and status code.",
            ("endpoint", "status"),
        )
        self.routed = r.counter(
            "ppchecker_routed_total",
            "Submissions routed to a shard, by shard.",
            ("shard",),
        )
        self.shard_restarts = r.counter(
            "ppchecker_shard_restarts_total",
            "Dead shard processes respawned by the supervisor, "
            "by shard.",
            ("shard",),
        )
        self.reroutes = r.counter(
            "ppchecker_reroutes_total",
            "Requests retried after their shard died mid-flight, "
            "by shard.",
            ("shard",),
        )
        self.shards_alive = r.gauge(
            "ppchecker_shards_alive",
            "Shard processes currently alive.",
            callback=supervisor_alive,
        )
        self.hedges = r.counter(
            "ppchecker_hedges_total",
            "Hedged /v1/check submissions, by outcome (primary_won "
            "| hedge_won | suppressed -- the retry budget was dry).",
            ("outcome",),
        )
        self.breaker_transitions = r.counter(
            "ppchecker_breaker_transitions_total",
            "Circuit-breaker state changes, by shard and new state.",
            ("shard", "to"),
        )
        self.deadline_shed = r.counter(
            "ppchecker_deadline_shed_total",
            "Requests shed at the front because their deadline "
            "expired before any shard could take the work.",
        )

    def register_breakers(self, breakers) -> None:
        """Expose live breaker states as
        ``ppchecker_breaker_state{shard=...}`` (0 closed / 1
        half-open / 2 open); *breakers* is ``{shard name: breaker}``."""
        self.registry.register(CallbackGaugeFamily(
            "ppchecker_breaker_state",
            "Per-shard circuit-breaker state "
            "(0 closed, 1 half-open, 2 open).",
            "shard",
            lambda: {name: float(b.state_code)
                     for name, b in breakers.items()},
        ))

    def register_retry_budget(self, budget) -> None:
        """Expose the front's shared retry/hedge token bucket."""
        self.registry.gauge(
            "ppchecker_retry_budget_remaining",
            "Tokens left in the front's retry budget; reroute "
            "retries and hedges are denied when it reaches zero.",
            callback=lambda: budget.remaining,
        )

    def render(self) -> str:
        return self.registry.render()


def _prefixed(payload: Any, index: int) -> Any:
    """Rewrite shard-local job ids in *payload* into the cluster id
    space (``job-3`` -> ``s1-job-3``)."""
    if not isinstance(payload, dict):
        return payload
    doc = dict(payload)
    for field in ("id", "job_id"):
        value = doc.get(field)
        if isinstance(value, str):
            doc[field] = f"s{index}-{value}"
    location = doc.get("location")
    if isinstance(location, str) and location.startswith("/v1/jobs/"):
        doc["location"] = ("/v1/jobs/"
                           f"s{index}-{location[len('/v1/jobs/'):]}")
    return doc


class ShardUnavailable(Exception):
    """No live shard could take the request within the budget."""


class FrontDeadlineExpired(Exception):
    """The request's deadline ran out while the front was still
    routing (waiting out a respawn or retrying a flaky shard)."""

    def __init__(self, deadline: Deadline | None) -> None:
        self.deadline = deadline
        super().__init__("deadline expired at the cluster front")


def _routing_key(doc: Any) -> str:
    """The content fingerprint used for shard placement, blind to
    the reserved ``deadline_s`` field -- the same bundle with a
    different (or no) budget must land on the same shard so its
    coalescing and artifact locality survive deadlines."""
    if isinstance(doc, dict) and DEADLINE_FIELD in doc:
        doc = {key: value for key, value in doc.items()
               if key != DEADLINE_FIELD}
    return fingerprint(doc)


class _FrontHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = f"ppchecker-front/{__version__}"

    def version_string(self) -> str:
        return self.server_version

    # -- plumbing ----------------------------------------------------------

    @property
    def front(self) -> "ClusterFront":
        return self.server.front  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        pass

    def _endpoint(self) -> str:
        path = self.path.split("?", 1)[0]
        if _JOB_PATH.match(path):
            return "/v1/jobs/{id}"
        if path in ("/healthz", "/metrics", "/v1/check", "/v1/jobs",
                    "/v1/batch", "/v1/deadletter"):
            return path
        return "other"

    def _send_json(self, status: int, payload: dict,
                   headers: dict[str, str] | None = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.front.metrics.requests.inc(
            endpoint=self._endpoint(), status=str(status))
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, kind: str, message: str,
                         headers: dict[str, str] | None = None,
                         **extra: Any) -> None:
        self._send_json(status, versioned(
            {"error": {"kind": kind, "message": message, **extra}}
        ), headers)

    def _read_json(self) -> Any:
        length = self.headers.get("Content-Length")
        if length is None:
            self._send_error_json(411, "length_required",
                                  "Content-Length is required")
            return None
        length = int(length)
        if length > self.front.config.max_body_bytes:
            self.close_connection = True
            self._send_error_json(
                413, "too_large",
                f"body exceeds "
                f"{self.front.config.max_body_bytes} bytes")
            return None
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except ValueError:
            self._send_error_json(400, "bad_request",
                                  "request body is not valid JSON")
            return None

    def _unavailable(self) -> None:
        self._send_error_json(
            503, "shard_unavailable",
            "no shard could take the request; the supervisor is "
            "respawning", headers={"Retry-After": "1"})

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._send_json(200, self.front.healthz())
            return
        if path == "/metrics":
            body = self.front.metrics.render().encode()
            self.front.metrics.requests.inc(
                endpoint="/metrics", status="200")
            self.send_response(200)
            self.send_header(
                "Content-Type",
                "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if path == "/v1/deadletter":
            self._send_json(200, self.front.deadletters())
            return
        match = _JOB_PATH.match(path)
        if match:
            self._job_status(match.group(1))
            return
        self._send_error_json(404, "not_found",
                              f"no such endpoint: {path}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if self.front.draining:
            doc = self._read_json()
            if doc is None:
                return
            self._send_error_json(
                503, "draining", "service is shutting down",
                headers={"Retry-After": str(max(1, int(
                    self.front.config.drain_timeout)))})
            return
        if path == "/v1/check":
            self._proxy_submission("/v1/check")
        elif path == "/v1/jobs":
            self._proxy_submission("/v1/jobs")
        elif path == "/v1/batch":
            self._batch()
        else:
            doc = self._read_json()
            if doc is not None:
                self._send_error_json(404, "not_found",
                                      f"no such endpoint: {path}")

    def _request_deadline(self, doc: Any) -> Deadline | None:
        """The submission's deadline, from the reserved ``deadline_s``
        field (popped before the routing fingerprint) or the
        ``X-Ppchecker-Deadline`` header; the field wins.  The front
        starts the clock here and forwards the *remaining* budget to
        whichever shard finally takes the work."""
        value: Any = None
        if isinstance(doc, dict) and DEADLINE_FIELD in doc:
            value = doc.pop(DEADLINE_FIELD)
        elif self.headers.get(DEADLINE_HEADER) is not None:
            value = self.headers.get(DEADLINE_HEADER)
        if value is None:
            return None
        return Deadline.after(parse_deadline_seconds(value))

    def _send_shed(self, deadline: Deadline | None) -> None:
        self.front.metrics.deadline_shed.inc()
        self._send_json(504, versioned({
            "error": shed_error("?", deadline,
                                "at the cluster front"),
        }), headers={"Retry-After": "1"})

    def _proxy_submission(self, path: str) -> None:
        doc = self._read_json()
        if doc is None:
            return
        try:
            deadline = self._request_deadline(doc)
        except InvalidDeadline as exc:
            self._send_error_json(400, "bad_request", str(exc))
            return
        try:
            shard, status, headers, payload = \
                self.front.submit_to_shard(doc, path,
                                           deadline=deadline)
        except FrontDeadlineExpired as exc:
            self._send_shed(exc.deadline)
            return
        except ShardUnavailable:
            self._unavailable()
            return
        out: dict[str, str] = {}
        retry_after = headers.get("Retry-After")
        if retry_after is not None:
            out["Retry-After"] = retry_after
        payload = _prefixed(payload, shard.index)
        if isinstance(payload, dict) and "location" in payload:
            out["Location"] = payload["location"]
        self._send_json(status, payload, out or None)

    def _job_status(self, job_id: str) -> None:
        match = _SHARD_ID.match(job_id)
        if not match:
            self._send_error_json(
                404, "not_found", f"no such job: {job_id}")
            return
        index, local_id = int(match.group(1)), match.group(2)
        shard = self.front.supervisor.shard(index)
        if shard is None:
            self._send_error_json(
                404, "not_found", f"no such shard: s{index}")
            return
        try:
            status, headers, payload = self.front.proxy(
                shard, "GET", f"/v1/jobs/{local_id}")
        except ShardUnavailable:
            self._unavailable()
            return
        self._send_json(status, _prefixed(payload, index))

    def _batch(self) -> None:
        doc = self._read_json()
        if doc is None:
            return
        bundles = doc.get("bundles") if isinstance(doc, dict) else doc
        if not isinstance(bundles, list) or not bundles:
            self._send_error_json(
                400, "bad_request",
                'body must be {"bundles": [bundle, ...]}')
            return
        self._send_json(*self.front.batch(bundles))


class ClusterFront:
    """Routing, aggregation, and retry logic behind the handler."""

    def __init__(self, config: ClusterConfig,
                 supervisor: ShardSupervisor,
                 metrics: FrontMetrics) -> None:
        self.config = config
        self.supervisor = supervisor
        self.metrics = metrics
        self._draining = threading.Event()
        #: one breaker per shard, fed from every proxied request;
        #: open breakers divert traffic to the next ring owner
        self.breakers = {
            shard.name: CircuitBreaker(
                failure_threshold=config.breaker_failures,
                latency_threshold=config.breaker_latency,
                open_seconds=config.breaker_cooloff,
                on_transition=(
                    lambda state, name=shard.name:
                    metrics.breaker_transitions.inc(shard=name,
                                                    to=state)),
            )
            for shard in supervisor.shards
        }
        metrics.register_breakers(self.breakers)
        #: /v1/check latency window; its p95 is the hedge delay
        self.latency = LatencyTracker(default_delay=config.hedge_delay)
        #: shared token bucket bounding reroute retries and hedges,
        #: so a brownout cannot amplify into a front-side storm
        self.retry_budget = (
            RetryBudget(config.retry_budget,
                        config.retry_budget_refill)
            if config.retry_budget is not None else None)
        if self.retry_budget is not None:
            metrics.register_retry_budget(self.retry_budget)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        self._draining.set()

    # -- shard I/O ---------------------------------------------------------

    def proxy(self, shard: ShardProcess, method: str, path: str,
              doc: Any = None,
              deadline: Deadline | None = None,
              ) -> tuple[int, dict[str, str], Any]:
        """One request to *shard*, retried across a respawn window.

        A shard that dies mid-flight (connection refused/reset) is
        retried until it -- or its replacement on the same ring
        position -- answers, bounded by ``reroute_timeout``, the
        request's remaining *deadline*, and (when configured) the
        front's retry budget.  Every outcome feeds the shard's
        breaker: connection failures and 5xx answers count against
        it, fast answers reset it, and -- with ``breaker_latency``
        set -- slow answers count as brownout failures even though
        the response is still used."""
        reroute_until = time.monotonic() + self.config.reroute_timeout
        breaker = self.breakers.get(shard.name)
        attempt = 0
        while True:
            if deadline is not None and deadline.expired:
                raise FrontDeadlineExpired(deadline)
            started = time.monotonic()
            try:
                status, headers, payload = self._request(
                    shard, method, path, doc, deadline=deadline)
            except (OSError, HTTPException):
                # connection refused (respawning), reset, or torn
                # mid-response (the shard died while answering)
                if breaker is not None:
                    breaker.record_failure()
                attempt += 1
                if attempt > 1:
                    self.metrics.reroutes.inc(shard=shard.name)
                if time.monotonic() >= reroute_until:
                    raise ShardUnavailable(shard.name)
                if (self.retry_budget is not None
                        and not self.retry_budget.try_acquire()):
                    # dry budget: fail fast instead of storming a
                    # cluster that is already in trouble
                    raise ShardUnavailable(shard.name)
                time.sleep(0.2)
                continue
            if breaker is not None:
                # 504 is a deadline shed -- the shard doing its job,
                # not the shard failing
                if status >= 500 and status != 504:
                    breaker.record_failure()
                else:
                    breaker.record_success(time.monotonic() - started)
            return status, headers, payload

    def _request(self, shard: ShardProcess, method: str, path: str,
                 doc: Any = None,
                 deadline: Deadline | None = None,
                 ) -> tuple[int, dict[str, str], Any]:
        if shard.port is None:
            raise ConnectionError(f"{shard.name} has no port yet")
        conn = HTTPConnection(self.config.host, shard.port,
                              timeout=self.config.request_timeout)
        try:
            body = None
            headers = {}
            if doc is not None:
                body = json.dumps(doc).encode("utf-8")
                headers["Content-Type"] = "application/json"
            if deadline is not None:
                # forward what is *left* of the budget, so time spent
                # routing at the front is not granted twice
                headers[DEADLINE_HEADER] = (
                    f"{max(deadline.remaining(), 0.001):.6f}")
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            response_headers = dict(response.getheaders())
            content_type = response_headers.get("Content-Type", "")
            payload: Any
            if content_type.startswith("application/json"):
                payload = json.loads(raw) if raw else None
            else:
                payload = raw.decode("utf-8", "replace")
            return response.status, response_headers, payload
        finally:
            conn.close()

    def _pick_shard(self, key: str) -> ShardProcess | None:
        """The first live shard in *key*'s failover order whose
        breaker admits the request.

        A closed breaker is consulted without side effects; an open
        one past its cool-off admits this request as the half-open
        probe.  When every live breaker refuses, the ring owner is
        used anyway -- breakers shift load onto healthy shards, they
        never turn a brownout into an outage."""
        preference = self.supervisor.route_preference(key)
        for shard in preference:
            breaker = self.breakers.get(shard.name)
            if breaker is None or breaker.allow():
                return shard
        return preference[0] if preference else None

    def submit_to_shard(self, doc: Any, path: str,
                        deadline: Deadline | None = None,
                        ) -> tuple[ShardProcess, int,
                                   dict[str, str], Any]:
        """Route one bundle document by content hash and forward it.

        The routing key is the canonical fingerprint of the raw JSON
        document -- cheap (no bundle parsing in the accept process)
        and deterministic, so identical documents always reach the
        same shard and coalesce there.  Routing walks the key's
        failover order past open breakers; idempotent ``/v1/check``
        submissions are additionally hedged."""
        key = _routing_key(doc)
        wait_until = time.monotonic() + self.config.reroute_timeout
        while True:
            shard = self._pick_shard(key)
            if shard is not None:
                break
            if deadline is not None and deadline.expired:
                raise FrontDeadlineExpired(deadline)
            if time.monotonic() >= wait_until:
                raise ShardUnavailable(key)
            time.sleep(0.2)
        self.metrics.routed.inc(shard=shard.name)
        if path == "/v1/check" and self.config.hedge:
            return self._check_hedged(key, shard, doc, deadline)
        status, headers, payload = self.proxy(shard, "POST", path,
                                              doc, deadline=deadline)
        return shard, status, headers, payload

    def _hedge_peer(self, key: str,
                    primary: ShardProcess) -> ShardProcess | None:
        """The shard a hedged check races against *primary*: the
        next shard in the key's failover order whose breaker is
        fully closed.  Half-open shards are skipped -- a hedge must
        never consume the single probe slot of a recovering shard."""
        for shard in self.supervisor.route_preference(key):
            if shard.name == primary.name:
                continue
            breaker = self.breakers.get(shard.name)
            if breaker is None or breaker.state == CLOSED:
                return shard
        return None

    def _check_hedged(self, key: str, primary: ShardProcess,
                      doc: Any, deadline: Deadline | None,
                      ) -> tuple[ShardProcess, int,
                                 dict[str, str], Any]:
        """``POST /v1/check`` with a hedge: when the primary has not
        answered within the p95-derived hedge delay, race the same
        request against a second shard and return whichever answers
        first.

        This is safe precisely because checks are content-addressed
        and idempotent: both shards compute (or coalesce onto) the
        same report for the same fingerprint, so the two answers are
        byte-identical and the loser's work warms the shared
        artifact store instead of being wasted.  Non-idempotent
        paths (``/v1/jobs`` creates client-visible job ids) are
        never hedged."""
        answers: queue.Queue = queue.Queue()

        def fire(shard: ShardProcess, who: str) -> None:
            try:
                out = self.proxy(shard, "POST", "/v1/check", doc,
                                 deadline=deadline)
            except (ShardUnavailable, FrontDeadlineExpired):
                out = None
            answers.put((who, shard, out))

        started = time.monotonic()
        threading.Thread(target=fire, args=(primary, "primary"),
                         daemon=True,
                         name="ppchecker-check-primary").start()
        first = None
        try:
            first = answers.get(timeout=self.latency.hedge_delay())
        except queue.Empty:
            pass

        winner = first if first is not None and first[2] is not None \
            else None
        hedged = False
        if winner is None:
            # the primary is slow (or already failed): race a hedge
            # if a healthy peer exists and the budget allows
            peer = self._hedge_peer(key, primary)
            if peer is not None:
                if (self.retry_budget is not None
                        and not self.retry_budget.try_acquire()):
                    self.metrics.hedges.inc(outcome="suppressed")
                else:
                    hedged = True
                    self.metrics.routed.inc(shard=peer.name)
                    threading.Thread(
                        target=fire, args=(peer, "hedge"),
                        daemon=True,
                        name="ppchecker-check-hedge").start()
            received = 1 if first is not None else 0
            expected = 2 if hedged else 1
            while winner is None and received < expected:
                item = answers.get()
                received += 1
                if item[2] is not None:
                    winner = item
        if winner is None:
            if deadline is not None and deadline.expired:
                raise FrontDeadlineExpired(deadline)
            raise ShardUnavailable(key)
        who, shard, (status, headers, payload) = winner
        if hedged:
            self.metrics.hedges.inc(
                outcome="hedge_won" if who == "hedge"
                else "primary_won")
        self.latency.note(time.monotonic() - started)
        return shard, status, headers, payload

    # -- aggregated endpoints ----------------------------------------------

    def healthz(self) -> dict:
        alive = self.supervisor.alive
        status = "ok" if alive == self.config.shards else "degraded"
        if self.draining:
            status = "draining"
        detail = [{
            "name": shard.name,
            "pid": shard.pid,
            "port": shard.port,
            "alive": shard.alive,
            "restarts": shard.restarts,
        } for shard in self.supervisor.shards]
        return versioned({
            "status": status,
            "version": __version__,
            "role": "front",
            "shards": self.config.shards,
            "shards_alive": alive,
            "workers": self.config.shards * self.config.workers,
            "shard_detail": detail,
            "durable": self.config.state_dir is not None,
        })

    def deadletters(self) -> dict:
        docs: list[dict] = []
        for shard in self.supervisor.shards:
            try:
                status, _, payload = self.proxy(
                    shard, "GET", "/v1/deadletter")
            except ShardUnavailable:
                continue
            if status != 200 or not isinstance(payload, dict):
                continue
            for doc in payload.get("deadletters", ()):
                docs.append(_prefixed(doc, shard.index))
        docs.sort(key=lambda d: (len(d["id"]), d["id"]))
        return versioned({"deadletters": docs, "count": len(docs)})

    def batch(self, bundles: list[Any]) -> tuple[int, dict]:
        """Fan a batch out to the owning shards concurrently and
        merge the answers back into submission order."""
        # group positions by shard up front; the ring only changes
        # if a shard is down *right now*, and proxy() rides out the
        # respawn window for us
        slots: list[dict | None] = [None] * len(bundles)
        groups: dict[int, list[int]] = {}
        unrouted: list[int] = []
        for position, bundle_doc in enumerate(bundles):
            # deadline-blind key + breaker-aware pick: a browned-out
            # shard's documents fail over to the next ring owner.
            # Per-document deadlines travel inline (the reserved
            # ``deadline_s`` field); the shard pops them before
            # parsing, so they never reach its fingerprints either.
            shard = self._pick_shard(_routing_key(bundle_doc))
            if shard is None:
                unrouted.append(position)
                continue
            groups.setdefault(shard.index, []).append(position)

        def run(index: int, positions: list[int]) -> None:
            shard = self.supervisor.shards[index]
            self.metrics.routed.inc(shard=shard.name,
                                    amount=len(positions))
            sub = [bundles[p] for p in positions]
            try:
                status, _, payload = self.proxy(
                    shard, "POST", "/v1/batch", {"bundles": sub})
            except ShardUnavailable:
                for p in positions:
                    slots[p] = {"status": "rejected", "error": {
                        "kind": "shard_unavailable",
                        "message": f"{shard.name} did not recover "
                                   f"within the reroute budget",
                    }}
                return
            results = (payload or {}).get("results", []) \
                if status == 200 and isinstance(payload, dict) else []
            for offset, p in enumerate(positions):
                if offset < len(results):
                    slots[p] = _prefixed(results[offset],
                                         shard.index)
                else:
                    slots[p] = {"status": "rejected", "error": {
                        "kind": "shard_error",
                        "message": f"{shard.name} answered "
                                   f"HTTP {status}",
                    }}

        threads = [threading.Thread(target=run, args=(index, spots))
                   for index, spots in groups.items()]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for p in unrouted:
            slots[p] = {"status": "rejected", "error": {
                "kind": "shard_unavailable",
                "message": "no shard is alive",
            }}
        results = [slot for slot in slots if slot is not None]
        counts: dict[str, int] = {}
        for result in results:
            status = result.get("status", "rejected")
            counts[status] = counts.get(status, 0) + 1
        return 200, versioned({
            "results": results,
            "checked": counts.get("ok", 0),
            "quarantined": counts.get("quarantined", 0),
            "rejected": (counts.get("rejected", 0)
                         + counts.get("invalid", 0)),
            "shed": counts.get("shed", 0),
        })


class _FrontHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int],
                 front: ClusterFront) -> None:
        super().__init__(address, _FrontHandler)
        self.front = front


class ClusterHandle:
    """A running cluster (tests, benchmarks, serve_cluster)."""

    def __init__(self, front: ClusterFront,
                 supervisor: ShardSupervisor,
                 httpd: _FrontHTTPServer,
                 thread: threading.Thread) -> None:
        self.front = front
        self.supervisor = supervisor
        self.httpd = httpd
        self.thread = thread

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    def close(self) -> None:
        """Graceful: 503 new work, drain + SIGTERM the shards, stop
        the listener."""
        self.front.begin_drain()
        self.supervisor.stop()
        self.httpd.shutdown()
        self.httpd.server_close()
        self.thread.join(5.0)


def start_cluster(config: ClusterConfig) -> ClusterHandle:
    """Spawn the shards, start the front listener, return a handle.
    ``config.port=0`` binds an ephemeral front port."""
    run_dir = config.state_dir or tempfile.mkdtemp(
        prefix="ppchecker-cluster-")
    os.makedirs(run_dir, exist_ok=True)
    # the alive-gauge callback closes over a cell filled in once the
    # supervisor exists (metrics and supervisor reference each other)
    cell: list[ShardSupervisor] = []
    metrics = FrontMetrics(
        lambda: cell[0].alive if cell else 0)
    supervisor = ShardSupervisor(config, run_dir, metrics)
    cell.append(supervisor)
    front = ClusterFront(config, supervisor, metrics)
    supervisor.start()
    httpd = _FrontHTTPServer((config.host, config.port), front)
    if config.port_file is not None:
        _write_port_file(config.port_file, httpd.server_address[1])
    thread = threading.Thread(
        target=httpd.serve_forever, kwargs={"poll_interval": 0.05},
        daemon=True, name="ppchecker-front-http")
    thread.start()
    return ClusterHandle(front, supervisor, httpd, thread)


def serve_cluster(config: ClusterConfig) -> int:
    """Blocking ``ppchecker serve --shards N``: run until
    SIGTERM/SIGINT, then drain the whole cluster gracefully."""
    handle = start_cluster(config)
    print(f"ppchecker {__version__} front serving on "
          f"http://{handle.host}:{handle.port} "
          f"({config.shards} shards x {config.workers} workers)",
          flush=True)
    stop = threading.Event()

    def _signal(signum: int, frame: Any) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, _signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        stop.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("draining cluster...", flush=True)
    handle.close()
    print("drained, bye", flush=True)
    return 0


__all__ = [
    "ClusterConfig",
    "ClusterFront",
    "ClusterHandle",
    "FrontDeadlineExpired",
    "FrontMetrics",
    "ShardProcess",
    "ShardSupervisor",
    "ShardUnavailable",
    "serve_cluster",
    "start_cluster",
]
