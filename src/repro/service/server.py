"""The long-running check service: HTTP surface and lifecycle.

``ppchecker serve`` keeps one :class:`~repro.service.runner.PipelineRunner`
resident -- warm analyzer models, warm artifact caches -- behind a
bounded job queue and a small REST API:

=====================  ==================================================
``POST /v1/check``     synchronous check; body is a bundle JSON document
                       (the ``export-corpus`` / ``save_bundle`` format),
                       response is the ``check --json`` report schema
``POST /v1/jobs``      asynchronous submit -> ``202`` + job id
``GET /v1/jobs/<id>``  job state, report or structured error when done
``POST /v1/batch``     many bundles in one request, quarantine semantics
``GET /healthz``       liveness: version, queue depth, workers alive
``GET /metrics``       Prometheus text exposition
=====================  ==================================================

Identical bundles coalesce onto one job by content hash; a full queue
returns ``429`` with ``Retry-After``; a draining service (SIGTERM)
returns ``503`` for new work while queued jobs finish.  Everything is
stdlib (:mod:`http.server`), no new dependencies.
"""

from __future__ import annotations

import json
import os
import re
import signal
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro import __version__
from repro.android.serialization import bundle_from_dict, bundle_to_dict
from repro.core.schema import versioned
from repro.durability.service_log import ServiceLog, deadletter_doc
from repro.hashing import fingerprint
from repro.pipeline.resilience import Deadline
from repro.service import jobs as jobstates
from repro.service.coalescing import JobIndex
from repro.service.jobs import Job, JobQueue, QueueFull, ServiceDraining
from repro.service.metrics import ServiceMetrics
from repro.service.runner import (
    PipelineRunner,
    ServiceConfig,
    WorkerPool,
    shed_error,
)

_JOB_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9_.-]+)$")

#: request-level deadline intake: relative seconds, as an HTTP header
#: or a reserved top-level key in the bundle document.  The field is
#: stripped before parsing/fingerprinting, so the same bundle with
#: different deadlines still shares one content hash (coalescing and
#: cluster routing stay deadline-blind).
DEADLINE_HEADER = "X-Ppchecker-Deadline"
DEADLINE_FIELD = "deadline_s"


class InvalidBundle(ValueError):
    """The request body is JSON but not a valid bundle document."""


class InvalidDeadline(ValueError):
    """The request's deadline header/field is not a positive number."""


class DeadlineExpired(RuntimeError):
    """The submission's deadline was already spent on arrival; the
    job was shed before it could burn any pipeline work."""

    def __init__(self, error: dict) -> None:
        self.error = error
        super().__init__(error.get("message", "deadline expired"))


def parse_deadline_seconds(value: Any) -> float:
    """A deadline is a finite, positive number of seconds."""
    try:
        seconds = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidDeadline(
            f"deadline must be a number of seconds: {value!r}"
        ) from exc
    if not seconds > 0 or seconds != seconds or seconds == float("inf"):
        raise InvalidDeadline(
            f"deadline must be a finite positive number of seconds: "
            f"{value!r}")
    return seconds


class CheckService:
    """Queue + coalescing index + worker pool over one shared runner."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.metrics = ServiceMetrics()
        self.runner = PipelineRunner(config, self.metrics)
        self.queue = JobQueue(config.queue_size)
        self.index = JobIndex(
            completed_capacity=config.completed_jobs,
            on_evict=lambda job: self.metrics.evicted.inc(),
        )
        #: job id -> structured payload of parked poison pills; never
        #: coalesce targets (a resubmission gets a fresh job)
        self._deadletters: dict[str, dict] = {}
        self._deadletter_lock = threading.Lock()
        self.log = None
        if config.state_dir is not None:
            self.log = ServiceLog(config.state_dir,
                                  listener=self._on_journal_append)
            self._recover()
        self.pool = WorkerPool(self.queue, self.index, self.runner,
                               workers=config.workers, log=self.log)
        self._draining = threading.Event()
        self.metrics.registry.gauge(
            "ppchecker_queue_depth",
            "Jobs waiting for a worker.",
            callback=lambda: self.queue.depth,
        )
        self.metrics.registry.gauge(
            "ppchecker_queue_capacity",
            "Job queue capacity (backpressure threshold).",
            callback=lambda: self.queue.capacity,
        )
        self.metrics.registry.gauge(
            "ppchecker_workers_alive",
            "Worker threads currently alive.",
            callback=lambda: self.pool.alive,
        )
        self.pool.start()

    # -- durability --------------------------------------------------------

    def _on_journal_append(self, record_type: str,
                           nbytes: int) -> None:
        self.metrics.journal_records.inc(type=record_type)
        self.metrics.journal_size.inc(nbytes)

    def _recover(self) -> None:
        """Replay the job journal: re-queue unfinished jobs, park
        poison pills, and resume the id counter past journaled ids.
        Runs before the worker pool starts, so recovered jobs are
        indexed before anything can race them."""
        assert self.log is not None
        state = self.log.recover(self.config.max_redeliveries)
        self.metrics.journal_replayed.inc(state.records_replayed)
        self.index.ensure_counter(state.max_job_number)
        for recovered in state.deadletters:
            self._deadletters[recovered.id] = deadletter_doc(
                recovered.id, recovered.key, recovered.package,
                recovered.deliveries)
            self.metrics.jobs_deadlettered.inc()
        for recovered in state.requeue:
            try:
                bundle = bundle_from_dict(recovered.bundle_doc)
            except Exception:
                # a journaled bundle this build can no longer parse
                # (schema drift): park it rather than crash-loop
                self.log.job_deadlettered(recovered.id,
                                          recovered.deliveries)
                self._deadletters[recovered.id] = deadletter_doc(
                    recovered.id, recovered.key, recovered.package,
                    recovered.deliveries)
                self.metrics.jobs_deadlettered.inc()
                continue
            job = Job(recovered.id, recovered.key, bundle)
            job.deliveries = recovered.deliveries
            try:
                self.queue.put(job)
            except QueueFull:
                # more journaled work than this queue holds (capacity
                # was lowered across the restart): the rest stays
                # accepted-but-unfinished in the journal and is
                # recovered by the next startup
                break
            self.index.restore(job)
            self.metrics.jobs_recovered.inc()
        # the exact file size, correcting for replayed records the
        # per-append listener never saw
        self.metrics.journal_size.set(self.log.size_bytes)

    def deadletter(self, job_id: str) -> dict | None:
        with self._deadletter_lock:
            return self._deadletters.get(job_id)

    def deadletters(self) -> list[dict]:
        """Parked jobs, oldest id first (numeric job order)."""
        with self._deadletter_lock:
            docs = list(self._deadletters.values())
        return sorted(docs, key=lambda d: (len(d["id"]), d["id"]))

    # -- work intake -------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def deadline_for(self, seconds: float | None) -> Deadline | None:
        """A fresh :class:`Deadline` from request-supplied *seconds*,
        falling back to the configured default (``serve --deadline``);
        ``None`` = unbounded."""
        if seconds is None:
            seconds = self.config.default_deadline
        return Deadline.after(seconds) if seconds is not None else None

    def retry_after_seconds(self) -> int:
        """Load-aware backoff hint: the queue's expected drain time
        (depth over recent completion rate), clamped to [1, 60]s.
        Returned on 429s and deadline-shed 504s, so clients back off
        proportionally to real load instead of thundering back."""
        backlog = self.queue.depth + self.pool.active
        rate = self.runner.drain_rate.rate()
        if rate <= 0.0 or backlog <= 0:
            return 1
        return max(1, min(60, int(backlog / rate) + 1))

    def submit(self, doc: Any,
               deadline: Deadline | None = None) -> tuple[Job, bool]:
        """Resolve a bundle document to a (possibly shared) job.

        Raises :class:`ServiceDraining` during shutdown,
        :class:`InvalidBundle` on a malformed document,
        :class:`DeadlineExpired` when *deadline* is already spent
        (the job is shed before touching the queue), and
        :class:`~repro.service.jobs.QueueFull` when over capacity.
        """
        if self.draining:
            self.metrics.rejected.inc(reason="draining")
            raise ServiceDraining("service is draining")
        try:
            bundle = bundle_from_dict(doc)
            # re-serialize to canonical form so key order, defaulted
            # fields, and equivalent documents share one content hash
            key = fingerprint(bundle_to_dict(bundle))
        except Exception as exc:
            raise InvalidBundle(f"invalid bundle document: {exc}") \
                from exc
        if deadline is not None and deadline.expired:
            self.metrics.rejected.inc(reason="deadline_expired")
            self.metrics.deadline_shed.inc()
            raise DeadlineExpired(shed_error(
                bundle.package, deadline,
                "before the job was queued"))

        def enqueue(job: Job) -> None:
            self.queue.put(job)
            # journal only after the queue accepted the job: a 429'd
            # submission must never be resurrected by recovery.  The
            # append commits (fsync) before the 202 is answered, so
            # an acknowledged job survives a crash.
            if self.log is not None:
                self.log.job_accepted(job.id, job.key, job.package,
                                      bundle_to_dict(bundle))

        try:
            job, coalesced = self.index.submit(
                key,
                lambda job_id, k: Job(job_id, k, bundle,
                                      deadline=deadline),
                enqueue,
            )
        except QueueFull:
            self.metrics.rejected.inc(reason="queue_full")
            raise
        if coalesced:
            self.metrics.coalesced.inc()
            # the job keeps the loosest budget any waiter asked for
            job.extend_deadline(deadline)
        return job, coalesced

    def job(self, job_id: str) -> Job | None:
        return self.index.by_id(job_id)

    def healthz(self) -> dict:
        return versioned({
            "status": "draining" if self.draining else "ok",
            "version": __version__,
            "queue_depth": self.queue.depth,
            "queue_capacity": self.queue.capacity,
            "workers": self.config.workers,
            "workers_alive": self.pool.alive,
            "active_jobs": self.pool.active,
            "inflight_jobs": self.index.inflight,
            "completed_jobs": self.index.completed,
            "deadletters": len(self._deadletters),
            "durable": self.log is not None,
        })

    # -- lifecycle ---------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop accepting work; queued jobs keep running."""
        self._draining.set()

    def shutdown(self, drain: bool = True,
                 deadline: float | None = None) -> bool:
        """Drain (optionally) and join the workers.  Returns True
        when the queue fully drained before the deadline."""
        if deadline is None:
            deadline = self.config.drain_timeout
        self.begin_drain()
        drained = self.pool.drain(deadline) if drain else False
        self.pool.stop(deadline)
        if self.log is not None:
            self.log.close()
        return drained


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int],
                 service: CheckService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = f"ppchecker/{__version__}"

    def version_string(self) -> str:
        return self.server_version  # no sys_version leak

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> CheckService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        pass  # /metrics is the observability surface, not stderr

    def _endpoint(self) -> str:
        path = self.path.split("?", 1)[0]
        if _JOB_PATH.match(path):
            return "/v1/jobs/{id}"
        if path in ("/healthz", "/metrics", "/v1/check", "/v1/jobs",
                    "/v1/batch", "/v1/deadletter"):
            return path
        return "other"

    def _count(self, status: int) -> None:
        self.service.metrics.requests.inc(
            endpoint=self._endpoint(), status=str(status))

    def _send(self, status: int, body: bytes, content_type: str,
              headers: dict[str, str] | None = None) -> None:
        self._count(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict,
                   headers: dict[str, str] | None = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(status, body, "application/json", headers)

    def _send_error_json(self, status: int, kind: str, message: str,
                         headers: dict[str, str] | None = None,
                         **extra: Any) -> None:
        self._send_json(status, versioned(
            {"error": {"kind": kind, "message": message, **extra}}
        ), headers)

    def _read_json(self) -> Any:
        length = self.headers.get("Content-Length")
        if length is None:
            self._send_error_json(411, "length_required",
                                  "Content-Length is required")
            return None
        length = int(length)
        if length > self.service.config.max_body_bytes:
            self.close_connection = True
            self._send_error_json(
                413, "too_large",
                f"body exceeds "
                f"{self.service.config.max_body_bytes} bytes")
            return None
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except ValueError:
            self._send_error_json(400, "bad_request",
                                  "request body is not valid JSON")
            return None

    # -- submission helpers ------------------------------------------------

    def _drain_retry_after(self) -> str:
        """Seconds a client should back off during a drain: the
        remaining work can take up to the configured drain budget."""
        return str(max(1, int(self.service.config.drain_timeout)))

    def _load_retry_after(self) -> str:
        return str(self.service.retry_after_seconds())

    def _request_deadline(self, doc: Any) -> float | None:
        """The request's relative deadline in seconds, from the
        reserved ``deadline_s`` document field (popped -- it must
        never reach the fingerprint) or the ``X-Ppchecker-Deadline``
        header; the field wins when both are present.  Raises
        :class:`InvalidDeadline` on garbage."""
        value: Any = None
        if isinstance(doc, dict) and DEADLINE_FIELD in doc:
            value = doc.pop(DEADLINE_FIELD)
        elif self.headers.get(DEADLINE_HEADER) is not None:
            value = self.headers.get(DEADLINE_HEADER)
        if value is None:
            return None
        return parse_deadline_seconds(value)

    def _send_shed(self, error: dict, job_id: str | None = None,
                   ) -> None:
        """The 504-style structured payload for shed work, with the
        same load-aware Retry-After as a 429."""
        payload: dict = {"error": error}
        if job_id is not None:
            payload["job_id"] = job_id
        self._send_json(504, versioned(payload),
                        headers={"Retry-After":
                                 self._load_retry_after()})

    def _submit(self, doc: Any) -> tuple[Job, bool] | None:
        """Submit, translating intake failures to responses."""
        try:
            deadline = self.service.deadline_for(
                self._request_deadline(doc))
            return self.service.submit(doc, deadline=deadline)
        except ServiceDraining:
            self._send_error_json(
                503, "draining", "service is shutting down",
                headers={"Retry-After": self._drain_retry_after()})
        except QueueFull:
            self._send_error_json(
                429, "queue_full", "job queue is at capacity",
                headers={"Retry-After": self._load_retry_after()})
        except DeadlineExpired as exc:
            self._send_shed(exc.error)
        except InvalidDeadline as exc:
            self._send_error_json(400, "bad_request", str(exc))
        except InvalidBundle as exc:
            self._send_error_json(400, "bad_request", str(exc))
        return None

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._send_json(200, self.service.healthz())
            return
        if path == "/metrics":
            self._send(200, self.service.metrics.render().encode(),
                       "text/plain; version=0.0.4; charset=utf-8")
            return
        if path == "/v1/deadletter":
            docs = self.service.deadletters()
            self._send_json(200, versioned({
                "deadletters": docs,
                "count": len(docs),
            }))
            return
        match = _JOB_PATH.match(path)
        if match:
            job_id = match.group(1)
            job = self.service.job(job_id)
            if job is not None:
                self._send_json(200, versioned(job.to_dict()))
                return
            parked = self.service.deadletter(job_id)
            if parked is not None:
                self._send_json(200, versioned(dict(parked)))
                return
            if self.service.index.issued(job_id):
                # the id was real; its job aged out of the completed
                # LRU.  Stable body so clients can distinguish "gone,
                # resubmit the bundle" from a typo'd id.
                self._send_error_json(
                    410, "gone",
                    f"job {job_id} was evicted from the "
                    f"completed-job cache; resubmit the bundle to "
                    f"recompute it",
                    job_id=job_id)
                return
            self._send_error_json(
                404, "not_found", f"no such job: {job_id}")
            return
        self._send_error_json(404, "not_found",
                              f"no such endpoint: {path}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/v1/check":
            self._check_sync()
        elif path == "/v1/jobs":
            self._submit_async()
        elif path == "/v1/batch":
            self._batch()
        else:
            doc = self._read_json()
            if doc is not None:
                self._send_error_json(404, "not_found",
                                      f"no such endpoint: {path}")

    def _check_sync(self) -> None:
        doc = self._read_json()
        if doc is None:
            return
        submitted = self._submit(doc)
        if submitted is None:
            return
        job, _ = submitted
        if not job.wait(self.service.config.request_timeout):
            self._send_error_json(
                504, "timeout",
                f"job {job.id} did not finish within "
                f"{self.service.config.request_timeout:g}s; poll "
                f"/v1/jobs/{job.id}",
                job_id=job.id)
            return
        if job.state == jobstates.QUARANTINED:
            self._send_json(422, versioned({
                "error": {"kind": "quarantined", **(job.error or {})},
                "job_id": job.id,
            }))
            return
        if job.state == jobstates.SHED:
            self._send_shed(dict(job.error or {}), job_id=job.id)
            return
        # exactly the `check --json` schema: the report document,
        # stamped with schema_version (copy: the stored job result
        # is shared with coalesced waiters and /v1/jobs readers)
        self._send_json(200, versioned(dict(job.result or {})))

    def _submit_async(self) -> None:
        doc = self._read_json()
        if doc is None:
            return
        submitted = self._submit(doc)
        if submitted is None:
            return
        job, coalesced = submitted
        self._send_json(202, versioned({
            "id": job.id,
            "key": job.key,
            "state": job.state,
            "coalesced": coalesced,
            "location": f"/v1/jobs/{job.id}",
        }), headers={"Location": f"/v1/jobs/{job.id}"})

    def _batch(self) -> None:
        doc = self._read_json()
        if doc is None:
            return
        bundles = doc.get("bundles") if isinstance(doc, dict) else doc
        if not isinstance(bundles, list) or not bundles:
            self._send_error_json(
                400, "bad_request",
                'body must be {"bundles": [bundle, ...]}')
            return
        slots: list[dict | Job] = []
        for bundle_doc in bundles:
            try:
                deadline = self.service.deadline_for(
                    self._request_deadline(bundle_doc))
                job, _ = self.service.submit(bundle_doc,
                                             deadline=deadline)
                slots.append(job)
            except ServiceDraining:
                self._send_error_json(
                    503, "draining", "service is shutting down",
                    headers={"Retry-After":
                             self._drain_retry_after()})
                return
            except QueueFull:
                slots.append({"status": "rejected", "error": {
                    "kind": "queue_full",
                    "message": "job queue is at capacity",
                }})
            except DeadlineExpired as exc:
                slots.append({"status": "shed", "error": exc.error})
            except (InvalidBundle, InvalidDeadline) as exc:
                slots.append({"status": "invalid", "error": {
                    "kind": "bad_request", "message": str(exc),
                }})
        results = []
        for slot in slots:
            if isinstance(slot, dict):
                results.append(slot)
                continue
            slot.wait(self.service.config.request_timeout)
            if slot.state == jobstates.COMPLETED:
                results.append({"status": "ok", "job_id": slot.id,
                                "report": slot.result})
            elif slot.state == jobstates.QUARANTINED:
                results.append({"status": "quarantined",
                                "job_id": slot.id,
                                "error": slot.error})
            elif slot.state == jobstates.SHED:
                results.append({"status": "shed",
                                "job_id": slot.id,
                                "error": slot.error})
            else:
                results.append({"status": "pending",
                                "job_id": slot.id})
        counts = {"ok": 0, "quarantined": 0, "rejected": 0,
                  "invalid": 0, "pending": 0, "shed": 0}
        for result in results:
            counts[result["status"]] += 1
        self._send_json(200, versioned({
            "results": results,
            "checked": counts["ok"],
            "quarantined": counts["quarantined"],
            "rejected": counts["rejected"] + counts["invalid"],
            "shed": counts["shed"],
        }))


# -- embedding & the blocking entry point --------------------------------


class ServiceHandle:
    """A running service + HTTP listener (tests, benchmarks, serve)."""

    def __init__(self, service: CheckService,
                 httpd: _ServiceHTTPServer,
                 thread: threading.Thread) -> None:
        self.service = service
        self.httpd = httpd
        self.thread = thread

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    def close(self, drain: bool = True,
              deadline: float | None = None) -> bool:
        """Graceful stop: reject new work, drain, join workers, stop
        the listener.  Returns True when the drain completed."""
        drained = self.service.shutdown(drain=drain, deadline=deadline)
        self.httpd.shutdown()
        self.httpd.server_close()
        self.thread.join(5.0)
        return drained


def _write_port_file(path: str, port: int) -> None:
    """Publish the bound port atomically: readers polling the path
    see nothing or the complete number, never a partial write."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(f"{port}\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def read_port_file(path: str, timeout: float = 30.0) -> int:
    """Poll *path* until a serving process publishes its bound port
    (the reader half of ``--port-file``; supervisors and tests use
    this instead of the racy probe-a-port-then-release dance)."""
    end = time.monotonic() + timeout
    while True:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        if time.monotonic() > end:
            raise TimeoutError(f"no port published at {path}")
        time.sleep(0.05)


def start_service(config: ServiceConfig) -> ServiceHandle:
    """Start the service and its HTTP listener on a daemon thread.
    ``config.port=0`` binds an ephemeral port (see ``handle.port``,
    or set ``config.port_file`` to have it published to disk)."""
    service = CheckService(config)
    httpd = _ServiceHTTPServer((config.host, config.port), service)
    if config.port_file is not None:
        _write_port_file(config.port_file,
                         httpd.server_address[1])
    thread = threading.Thread(
        target=httpd.serve_forever, kwargs={"poll_interval": 0.05},
        daemon=True, name="ppchecker-http",
    )
    thread.start()
    return ServiceHandle(service, httpd, thread)


def serve(config: ServiceConfig) -> int:
    """Blocking ``ppchecker serve``: run until SIGTERM/SIGINT, then
    drain gracefully (503 for new work, queued jobs finish, workers
    join within ``config.drain_timeout``)."""
    handle = start_service(config)
    print(f"ppchecker {__version__} serving on "
          f"http://{handle.host}:{handle.port} "
          f"({config.workers} workers, queue {config.queue_size})",
          flush=True)
    stop = threading.Event()

    def _signal(signum: int, frame: Any) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, _signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        stop.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("draining...", flush=True)
    drained = handle.close(drain=True)
    print("drained, bye" if drained
          else "drain deadline exceeded, abandoning queued jobs",
          flush=True)
    return 0


__all__ = [
    "CheckService",
    "DEADLINE_FIELD",
    "DEADLINE_HEADER",
    "DeadlineExpired",
    "InvalidBundle",
    "InvalidDeadline",
    "ServiceHandle",
    "parse_deadline_seconds",
    "read_port_file",
    "start_service",
    "serve",
]
