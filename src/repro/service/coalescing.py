"""Request coalescing: one execution per content hash.

Identical bundles submitted concurrently must run the pipeline once.
The artifact store already dedupes *sequential* re-checks per stage,
but two concurrent submissions of the same bundle would both miss the
cold cache and compute everything twice.  :class:`JobIndex` closes
that race at the job layer: submissions are keyed by the bundle's
content hash, and a submission whose key matches an in-flight or
recently completed job attaches to that job instead of enqueuing a
new one -- every attached waiter gets the same report.

Completed jobs stay resolvable in a bounded LRU so bursts of identical
requests (the hot-app pattern of a production checker) are answered
without touching the queue at all.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Callable

from repro.service.jobs import Job

_JOB_ID = re.compile(r"^job-(\d+)$")


class JobIndex:
    """In-flight jobs by key, plus a completed-job LRU; also the
    ``id -> job`` directory behind ``GET /v1/jobs/<id>``."""

    def __init__(self, completed_capacity: int = 256,
                 on_evict: Callable[[Job], None] | None = None,
                 ) -> None:
        if completed_capacity < 0:
            raise ValueError("completed_capacity must be >= 0")
        self.completed_capacity = completed_capacity
        self._inflight: dict[str, Job] = {}
        self._completed: OrderedDict[str, Job] = OrderedDict()
        self._by_id: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._counter = 0
        self._evictions = 0
        self._on_evict = on_evict

    # -- submission --------------------------------------------------------

    def submit(self, key: str,
               make_job: Callable[[str, str], Job],
               enqueue: Callable[[Job], None]) -> tuple[Job, bool]:
        """Resolve *key* to a job, creating and enqueuing one if no
        in-flight or completed job matches.

        ``make_job(job_id, key)`` builds the job, ``enqueue`` places
        it on the queue; both run under the index lock so concurrent
        submissions of the same key can never race into two
        executions.  If ``enqueue`` raises (queue full), nothing is
        registered.  Returns ``(job, coalesced)``.
        """
        with self._lock:
            job = self._inflight.get(key)
            if job is None:
                job = self._completed.get(key)
                if job is not None:
                    self._completed.move_to_end(key)
            if job is not None:
                job.waiters += 1
                return job, True
            self._counter += 1
            job = make_job(f"job-{self._counter}", key)
            enqueue(job)
            self._inflight[key] = job
            self._by_id[job.id] = job
            return job, False

    # -- crash recovery ----------------------------------------------------

    def restore(self, job: Job) -> None:
        """Register a journal-recovered job as in-flight under its
        original id (``serve --state-dir`` re-queues accepted jobs on
        startup; waiters from the previous process are gone, but the
        id stays resolvable and new submissions of the same key
        coalesce onto the redelivery)."""
        with self._lock:
            self._inflight[job.key] = job
            self._by_id[job.id] = job

    def ensure_counter(self, floor: int) -> None:
        """Advance the id counter to at least *floor* so ids issued
        after a recovery never collide with journaled ones."""
        with self._lock:
            self._counter = max(self._counter, floor)

    def issued(self, job_id: str) -> bool:
        """Whether *job_id* was ever handed out by this index (or a
        journaled predecessor, after :meth:`ensure_counter`).  An
        issued id that no longer resolves was evicted -- the basis of
        the ``410 Gone`` vs ``404 Not Found`` distinction, in O(1)
        memory: ids are ``job-N`` with N monotonically increasing, so
        ``N <= counter`` decides membership exactly."""
        match = _JOB_ID.match(job_id)
        if not match:
            return False
        with self._lock:
            return 1 <= int(match.group(1)) <= self._counter

    # -- lifecycle ---------------------------------------------------------

    def complete(self, job: Job) -> None:
        """Move *job* from in-flight to the completed LRU (evicting
        the oldest completed job, and its id, past capacity)."""
        evicted_jobs: list[Job] = []
        with self._lock:
            self._inflight.pop(job.key, None)
            if self.completed_capacity == 0:
                self._by_id.pop(job.id, None)
                self._evictions += 1
                evicted_jobs.append(job)
            else:
                self._completed[job.key] = job
                self._completed.move_to_end(job.key)
                while len(self._completed) > self.completed_capacity:
                    _, evicted = self._completed.popitem(last=False)
                    self._by_id.pop(evicted.id, None)
                    self._evictions += 1
                    evicted_jobs.append(evicted)
        if self._on_evict is not None:
            for evicted in evicted_jobs:
                self._on_evict(evicted)

    def forget(self, job: Job) -> None:
        """Drop *job* from the in-flight map without entering the
        completed LRU (dead-lettered jobs must never be coalesce
        targets: a resubmission of the same bundle deserves a fresh
        delivery budget, not the parked poison pill)."""
        with self._lock:
            self._inflight.pop(job.key, None)
            self._by_id.pop(job.id, None)

    # -- lookups -----------------------------------------------------------

    def by_id(self, job_id: str) -> Job | None:
        with self._lock:
            return self._by_id.get(job_id)

    @property
    def evictions(self) -> int:
        """Completed jobs aged out of the LRU since startup."""
        with self._lock:
            return self._evictions

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    @property
    def completed(self) -> int:
        with self._lock:
            return len(self._completed)


__all__ = ["JobIndex"]
