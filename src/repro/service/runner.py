"""The shared pipeline behind the service, and its worker pool.

:class:`PipelineRunner` owns one :class:`~repro.core.checker.PPChecker`
built from the :class:`ServiceConfig` -- a tiered artifact store when
``cache_dir`` is set, the configured retry policy, and an optional
fault plan -- and executes jobs with quarantine semantics: a failing
check becomes a structured :class:`~repro.core.report.AppFailure`
document, never an unhandled exception.

:class:`WorkerPool` runs N daemon threads draining the
:class:`~repro.service.jobs.JobQueue` through the runner.  Workers
exist for the life of the service, so the pipeline's caches stay warm
across requests -- the whole point of serving instead of one-shot CLI
invocations.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.checker import PPChecker
from repro.core.report import AppFailure
from repro.pipeline.artifacts import build_store
from repro.pipeline.faults import FaultPlan
from repro.pipeline.resilience import (
    Deadline,
    RetryBudget,
    RetryPolicy,
    deadline_scope,
    is_deadline_error,
)
from repro.service import jobs as jobstates
from repro.service.coalescing import JobIndex
from repro.service.jobs import Job, JobQueue
from repro.service.metrics import ServiceMetrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.durability.service_log import ServiceLog


@dataclass
class ServiceConfig:
    """Everything ``ppchecker serve`` needs to build a service."""

    host: str = "127.0.0.1"
    port: int = 8742
    #: path that receives the actually-bound port (one ASCII integer,
    #: written atomically after the listener binds).  With ``port=0``
    #: this is how supervisors and tests learn the OS-assigned port
    #: without a probe-then-bind race.
    port_file: str | None = None
    workers: int = 4
    queue_size: int = 64
    cache_dir: str | None = None
    #: disk tier behind ``cache_dir``: ``"json"`` (one file per
    #: artifact) or ``"sqlite"`` (the cross-process
    #: :class:`~repro.pipeline.artifacts.SharedDiskStore` the
    #: ``--shards N`` worker plane points every shard at)
    store_backend: str = "json"
    #: memory-tier artifact cache capacity (entries).  Per process:
    #: a ``--shards N`` cluster holds N times this many in aggregate,
    #: with content-hash routing keeping each shard's share resident.
    cache_entries: int = 8192
    max_retries: int = 0
    stage_timeout: float | None = None
    fault_plan: FaultPlan | None = None
    #: lib id -> policy text; resolved by the CLI (directory or
    #: corpus), injected directly by in-process tests/benchmarks
    lib_policy_source: Callable[[str], str | None] | None = None
    #: how long a synchronous ``POST /v1/check`` waits for its job
    request_timeout: float = 300.0
    #: SIGTERM drain budget before workers are abandoned
    drain_timeout: float = 10.0
    #: completed jobs kept resolvable by id and content hash
    completed_jobs: int = 256
    #: cap on request bodies (a serialized bundle), bytes
    max_body_bytes: int = 32 * 1024 * 1024
    #: directory for the write-ahead job journal (``serve
    #: --state-dir``); None = in-memory only, jobs die with the process
    state_dir: str | None = None
    #: deliveries a journaled job may burn before recovery
    #: dead-letters it as a poison pill
    max_redeliveries: int = 3
    #: capacity of the process-wide retry token bucket shared by every
    #: stage retry (``serve --retry-budget``); None = unlimited
    #: retries, the historical behaviour
    retry_budget: float | None = None
    #: tokens the retry bucket regains per second
    retry_budget_refill: float = 1.0
    #: default per-job deadline (seconds) applied when a request
    #: carries none (``serve --deadline``); None = unbounded
    default_deadline: float | None = None


def shed_error(package: str, deadline: Deadline | None,
               where: str) -> dict[str, Any]:
    """The structured 504-style payload for one shed job."""
    doc: dict[str, Any] = {
        "kind": "deadline_exceeded",
        "package": package,
        "error": "DeadlineExceeded",
        "message": (f"request deadline expired {where}; the work "
                    f"was shed, not failed -- resubmit with a "
                    f"fresh budget to run it"),
        "where": where,
    }
    if deadline is not None and deadline.budget is not None:
        doc["deadline_s"] = deadline.budget
    return doc


class DrainRateEstimator:
    """Recent job completion rate (jobs/second), from a sliding
    window of completion timestamps -- the denominator of the
    load-aware ``Retry-After`` (queue depth over drain rate)."""

    def __init__(self, window: int = 64,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.clock = clock
        self._stamps: deque[float] = deque(maxlen=max(2, window))
        self._lock = threading.Lock()

    def note(self) -> None:
        """Record one finished job."""
        with self._lock:
            self._stamps.append(self.clock())

    def rate(self) -> float:
        """Jobs/second over the window; 0.0 until two completions."""
        with self._lock:
            if len(self._stamps) < 2:
                return 0.0
            span = self._stamps[-1] - self._stamps[0]
            if span <= 0:
                return 0.0
            return (len(self._stamps) - 1) / span


class PipelineRunner:
    """One shared checker; executes jobs with quarantine semantics."""

    def __init__(self, config: ServiceConfig,
                 metrics: ServiceMetrics) -> None:
        self.config = config
        self.metrics = metrics
        kwargs = {}
        if config.lib_policy_source is not None:
            kwargs["lib_policy_source"] = config.lib_policy_source
        #: one token bucket shared by every stage retry in the
        #: process, so a brownout cannot amplify into a retry storm
        self.retry_budget = (
            RetryBudget(config.retry_budget,
                        config.retry_budget_refill)
            if config.retry_budget is not None else None)
        self.checker = PPChecker(
            artifact_store=build_store(
                cache_dir=config.cache_dir,
                max_entries=config.cache_entries,
                backend=config.store_backend,
            ),
            retry_policy=RetryPolicy(
                max_retries=config.max_retries,
                stage_timeout=config.stage_timeout,
                budget=self.retry_budget,
            ),
            fault_plan=config.fault_plan,
            **kwargs,
        )
        #: recent completion rate feeding the load-aware Retry-After
        self.drain_rate = DrainRateEstimator()
        # stage timing / cache counters flow into /metrics without
        # changing stage behaviour
        self.stats.add_listener(metrics.observe_stage)
        metrics.register_thread_ledger(self.stats)
        if self.retry_budget is not None:
            metrics.register_retry_budget(self.retry_budget)

    @property
    def stats(self):
        return self.checker.stats

    def run(self, job: Job) -> None:
        """Check the job's bundle under its deadline; leave it
        completed, quarantined, or -- when the deadline ran out
        mid-check -- shed."""
        try:
            with deadline_scope(job.deadline):
                report = self.checker.check(job.bundle)
        except Exception as exc:
            if is_deadline_error(exc) or (
                    job.deadline is not None and job.deadline.expired):
                # the submitter stopped waiting: drop, don't fail --
                # the same bundle with a fresh budget runs fine
                self.metrics.jobs.inc(status=jobstates.SHED)
                self.metrics.deadline_shed.inc()
                job.shed(shed_error(job.package, job.deadline,
                                    "while the check was running"))
                return
            failure = AppFailure.from_exception(job.package, exc)
            self.metrics.jobs.inc(status=jobstates.QUARANTINED)
            self.metrics.quarantined.inc()
            job.quarantine(failure.to_dict())
            return
        self.metrics.jobs.inc(status=jobstates.COMPLETED)
        job.finish(report.to_dict())


class WorkerPool:
    """N threads draining the queue through the shared runner.

    With a :class:`~repro.durability.service_log.ServiceLog` attached
    (``serve --state-dir``), every pickup and terminal transition is
    journaled: ``started`` *before* the check runs (so a crash
    mid-check burns one delivery) and ``completed``/``quarantined``
    after it, so the next process never re-runs finished work.
    """

    def __init__(self, queue: JobQueue, index: JobIndex,
                 runner: PipelineRunner, workers: int,
                 log: "ServiceLog | None" = None) -> None:
        self.queue = queue
        self.index = index
        self.runner = runner
        self.workers = workers
        self.log = log
        self._stop = threading.Event()
        self._active = 0
        self._active_lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._loop, daemon=True,
                             name=f"ppchecker-worker-{i}")
            for i in range(workers)
        ]

    def start(self) -> None:
        for thread in self._threads:
            thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.get(timeout=0.1)
            if job is None:
                continue
            with self._active_lock:
                self._active += 1
            try:
                if job.deadline is not None and job.deadline.expired:
                    # shed at dequeue: the submitter's budget is
                    # already gone, so the job must never burn
                    # pipeline work
                    metrics = self.runner.metrics
                    metrics.jobs.inc(status=jobstates.SHED)
                    metrics.deadline_shed.inc()
                    job.shed(shed_error(job.package, job.deadline,
                                        "while the job was queued"))
                    if self.log is not None:
                        self.log.job_shed(job.id, job.error or {})
                    # forget, don't complete: a shed job must never
                    # be a coalesce target -- a resubmission with a
                    # fresh budget deserves to actually run
                    self.index.forget(job)
                    self.runner.drain_rate.note()
                    continue
                job.state = jobstates.RUNNING
                job.deliveries += 1
                if self.log is not None:
                    self.log.job_started(job.id, job.deliveries)
                self.runner.run(job)
                if self.log is not None:
                    if job.state == jobstates.QUARANTINED:
                        self.log.job_quarantined(job.id,
                                                 job.error or {})
                    elif job.state == jobstates.SHED:
                        self.log.job_shed(job.id, job.error or {})
                    else:
                        self.log.job_completed(job.id)
                if job.state == jobstates.SHED:
                    self.index.forget(job)
                else:
                    # index first, then the job's own event is
                    # already set -- late submissions of the same key
                    # resolve to the finished job either way
                    self.index.complete(job)
                self.runner.drain_rate.note()
            finally:
                with self._active_lock:
                    self._active -= 1

    @property
    def alive(self) -> int:
        return sum(1 for t in self._threads if t.is_alive())

    @property
    def active(self) -> int:
        with self._active_lock:
            return self._active

    def idle(self) -> bool:
        return self.queue.depth == 0 and self.active == 0

    def drain(self, deadline: float) -> bool:
        """Wait up to *deadline* seconds for queued + running jobs to
        finish; True when fully drained."""
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            if self.idle():
                return True
            time.sleep(0.02)
        return self.idle()

    def stop(self, deadline: float = 5.0) -> None:
        """Stop the loops and join workers within *deadline*."""
        self._stop.set()
        end = time.monotonic() + deadline
        for thread in self._threads:
            thread.join(max(0.0, end - time.monotonic()))


__all__ = [
    "ServiceConfig",
    "DrainRateEstimator",
    "PipelineRunner",
    "WorkerPool",
    "shed_error",
]
