"""A thin stdlib client for the check service.

Used by the test suite, the throughput benchmark, and as the
reference for how to talk to ``ppchecker serve`` from Python.  One
:class:`ServiceClient` is safe to share across threads: every call
opens its own :class:`http.client.HTTPConnection`.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Any


class ServiceError(RuntimeError):
    """An error response from the service."""

    def __init__(self, status: int, payload: Any) -> None:
        self.status = status
        self.payload = payload
        detail = ""
        if isinstance(payload, dict):
            detail = payload.get("error", {}).get("message", "")
        super().__init__(f"HTTP {status}: {detail or payload}")


class ServiceBusy(ServiceError):
    """429: the job queue is full; retry after ``retry_after``."""

    def __init__(self, status: int, payload: Any,
                 retry_after: float) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class ServiceUnavailable(ServiceError):
    """503: the service is draining; retry after ``retry_after``
    seconds (the server derives it from its drain budget)."""

    def __init__(self, status: int, payload: Any,
                 retry_after: float = 1.0) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class JobGone(ServiceError):
    """410: the job existed but aged out of the completed-job cache;
    resubmit the bundle to recompute it."""


class CheckQuarantined(ServiceError):
    """422: the check failed; ``error`` is the structured
    :class:`~repro.core.report.AppFailure` document."""

    def __init__(self, status: int, payload: Any) -> None:
        super().__init__(status, payload)
        self.error = (payload.get("error", {})
                      if isinstance(payload, dict) else {})


class ServiceClient:
    """Talk to one ``ppchecker serve`` instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8742,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def request(self, method: str, path: str, doc: Any = None,
                ) -> tuple[int, dict[str, str], Any]:
        """One round-trip; returns ``(status, headers, payload)``
        with the payload JSON-decoded when the response is JSON."""
        conn = HTTPConnection(self.host, self.port,
                              timeout=self.timeout)
        try:
            body = None
            headers = {}
            if doc is not None:
                body = json.dumps(doc).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            response_headers = dict(response.getheaders())
            content_type = response_headers.get("Content-Type", "")
            if content_type.startswith("application/json"):
                payload = json.loads(raw) if raw else None
            else:
                payload = raw.decode("utf-8", "replace")
            return response.status, response_headers, payload
        finally:
            conn.close()

    def _raise_for(self, status: int, headers: dict[str, str],
                   payload: Any) -> None:
        if status == 429:
            raise ServiceBusy(
                status, payload,
                retry_after=float(headers.get("Retry-After", 1)))
        if status == 503:
            raise ServiceUnavailable(
                status, payload,
                retry_after=float(headers.get("Retry-After", 1)))
        if status == 422:
            raise CheckQuarantined(status, payload)
        if status == 410:
            raise JobGone(status, payload)
        raise ServiceError(status, payload)

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> dict:
        status, headers, payload = self.request("GET", "/healthz")
        if status != 200:
            self._raise_for(status, headers, payload)
        return payload

    def metrics_text(self) -> str:
        status, headers, payload = self.request("GET", "/metrics")
        if status != 200:
            self._raise_for(status, headers, payload)
        return payload

    def version(self) -> str:
        return self.healthz()["version"]

    def check(self, bundle_doc: dict) -> dict:
        """Synchronous check; the report document on success, a
        :class:`CheckQuarantined` on a quarantined check."""
        status, headers, payload = self.request(
            "POST", "/v1/check", bundle_doc)
        if status != 200:
            self._raise_for(status, headers, payload)
        return payload

    def submit(self, bundle_doc: dict) -> dict:
        """Asynchronous submit; the job stub (``id``, ``key``,
        ``state``, ``coalesced``)."""
        status, headers, payload = self.request(
            "POST", "/v1/jobs", bundle_doc)
        if status != 202:
            self._raise_for(status, headers, payload)
        return payload

    def job(self, job_id: str) -> dict:
        status, headers, payload = self.request(
            "GET", f"/v1/jobs/{job_id}")
        if status != 200:
            self._raise_for(status, headers, payload)
        return payload

    def wait(self, job_id: str, timeout: float = 60.0,
             interval: float = 0.05) -> dict:
        """Poll until the job is terminal; its final document."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["state"] in ("completed", "quarantined",
                                "deadlettered"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['state']} after "
                    f"{timeout:g}s")
            time.sleep(interval)

    def batch(self, bundle_docs: list[dict]) -> dict:
        status, headers, payload = self.request(
            "POST", "/v1/batch", {"bundles": bundle_docs})
        if status != 200:
            self._raise_for(status, headers, payload)
        return payload

    def deadletter(self) -> dict:
        """The parked poison-pill jobs (``serve --state-dir`` only;
        empty list on an in-memory service)."""
        status, headers, payload = self.request(
            "GET", "/v1/deadletter")
        if status != 200:
            self._raise_for(status, headers, payload)
        return payload


__all__ = [
    "ServiceError",
    "ServiceBusy",
    "ServiceUnavailable",
    "JobGone",
    "CheckQuarantined",
    "ServiceClient",
]
