"""A minimal Prometheus-style metrics registry (stdlib only).

The check service exposes its operational state on ``GET /metrics`` in
the Prometheus text exposition format.  Three instrument kinds cover
everything the service needs:

- :class:`Counter`   -- monotonically increasing, optionally labelled
  (request counts by endpoint/status, jobs by outcome, ...).
- :class:`Gauge`     -- a settable value, or a live callback sampled at
  render time (queue depth, workers alive).
- :class:`Histogram` -- cumulative buckets + sum + count (per-stage
  latency).

:class:`ServiceMetrics` bundles the instruments the service registers
and is the bridge from :class:`repro.pipeline.artifacts.PipelineStats`
(via its listener hook) into the registry.  Everything is thread-safe;
rendering is deterministic (registration order, sorted label values).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable

#: default latency buckets (seconds) -- pipeline stages run from
#: sub-millisecond (cache hits) to multi-second (cold static analysis)
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\")
                 .replace("\n", r"\n")
                 .replace('"', r'\"'))


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labelnames: tuple[str, ...],
                   labelvalues: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = list(zip(labelnames, labelvalues)) + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in pairs
    )
    return "{" + body + "}"


class _Metric:
    """Shared name/help/label plumbing."""

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 labelnames: Iterable[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: dict[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def header(self) -> list[str]:
        return [f"# HELP {self.name} {self.help}",
                f"# TYPE {self.name} {self.kind}"]

    def render(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing value, per label combination."""

    kind = "counter"

    def __init__(self, name: str, help: str,
                 labelnames: Iterable[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                f"{self.name}"
                f"{_format_labels(self.labelnames, key)} "
                f"{_format_value(value)}"
            )
        return lines


class Gauge(_Metric):
    """A settable value; pass ``callback`` for a live sample."""

    kind = "gauge"

    def __init__(self, name: str, help: str,
                 callback: Callable[[], float] | None = None) -> None:
        super().__init__(name, help, ())
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        with self._lock:
            return self._value

    def render(self) -> list[str]:
        return self.header() + [
            f"{self.name} {_format_value(self.value())}"
        ]


class Histogram(_Metric):
    """Cumulative-bucket histogram, per label combination."""

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 labelnames: Iterable[str] = (),
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("need at least one bucket")
        #: label key -> [per-bucket counts..., +Inf count]
        self._counts: dict[tuple[str, ...], list[int]] = {}
        self._sums: dict[tuple[str, ...], float] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.setdefault(
                key, [0] * (len(self.buckets) + 1))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value

    def count(self, **labels: str) -> int:
        key = self._key(labels)
        with self._lock:
            return sum(self._counts.get(key, ()))

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            items = sorted(
                (key, list(counts), self._sums[key])
                for key, counts in self._counts.items()
            )
        for key, counts, total in items:
            cumulative = 0
            for bound, count in zip(
                    list(self.buckets) + [float("inf")], counts):
                cumulative += count
                le = (("le", _format_value(bound)),)
                lines.append(
                    f"{self.name}_bucket"
                    f"{_format_labels(self.labelnames, key, le)} "
                    f"{cumulative}"
                )
            lines.append(
                f"{self.name}_sum"
                f"{_format_labels(self.labelnames, key)} "
                f"{_format_value(total)}"
            )
            lines.append(
                f"{self.name}_count"
                f"{_format_labels(self.labelnames, key)} "
                f"{cumulative}"
            )
        return lines


class CallbackGaugeFamily(_Metric):
    """A labelled gauge family sampled at render time.

    ``callback`` returns ``{label value: number}``; every render emits
    one sample per entry, sorted by label value.  Used to surface the
    process-wide NLP memo-cache counters (:mod:`repro.memo`) without
    the service having to observe every cache lookup.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str, labelname: str,
                 callback: Callable[[], dict[str, float]]) -> None:
        super().__init__(name, help, (labelname,))
        self._callback = callback

    def render(self) -> list[str]:
        lines = self.header()
        for value_label, value in sorted(self._callback().items()):
            lines.append(
                f"{self.name}"
                f"{_format_labels(self.labelnames, (value_label,))} "
                f"{_format_value(float(value))}"
            )
        return lines


class MetricsRegistry:
    """Holds instruments; renders the exposition document."""

    def __init__(self) -> None:
        self._metrics: list[_Metric] = []
        self._lock = threading.Lock()

    def register(self, metric: _Metric) -> Any:
        with self._lock:
            if any(m.name == metric.name for m in self._metrics):
                raise ValueError(f"duplicate metric {metric.name!r}")
            self._metrics.append(metric)
        return metric

    def counter(self, name: str, help: str,
                labelnames: Iterable[str] = ()) -> Counter:
        return self.register(Counter(name, help, labelnames))

    def gauge(self, name: str, help: str,
              callback: Callable[[], float] | None = None) -> Gauge:
        return self.register(Gauge(name, help, callback=callback))

    def histogram(self, name: str, help: str,
                  labelnames: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  ) -> Histogram:
        return self.register(Histogram(name, help, labelnames, buckets))

    def render(self) -> str:
        with self._lock:
            metrics = list(self._metrics)
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


class ServiceMetrics:
    """The check service's instrument set over one registry.

    ``observe_stage`` has the
    :meth:`repro.pipeline.artifacts.PipelineStats.add_listener`
    signature, so a service wires its shared pipeline's counters
    straight into ``/metrics`` without touching stage behaviour.
    """

    def __init__(self,
                 registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        r = self.registry
        self.requests = r.counter(
            "ppchecker_requests_total",
            "HTTP requests served, by endpoint and status code.",
            ("endpoint", "status"),
        )
        self.jobs = r.counter(
            "ppchecker_jobs_total",
            "Check jobs finished, by outcome "
            "(completed | quarantined).",
            ("status",),
        )
        self.coalesced = r.counter(
            "ppchecker_jobs_coalesced_total",
            "Submissions served by an existing in-flight or "
            "completed job with the same content hash.",
        )
        self.quarantined = r.counter(
            "ppchecker_quarantine_total",
            "Jobs whose check failed and was quarantined as a "
            "structured error payload.",
        )
        self.rejected = r.counter(
            "ppchecker_rejected_total",
            "Submissions rejected, by reason "
            "(queue_full | draining).",
            ("reason",),
        )
        self.evicted = r.counter(
            "ppchecker_jobs_evicted_total",
            "Completed jobs aged out of the LRU (their ids now "
            "answer 410 Gone).",
        )
        self.journal_records = r.counter(
            "ppchecker_journal_records_total",
            "Records appended to the write-ahead job journal, "
            "by record type.",
            ("type",),
        )
        self.journal_replayed = r.counter(
            "ppchecker_journal_replayed_total",
            "Journal records replayed during startup recovery.",
        )
        self.jobs_recovered = r.counter(
            "ppchecker_jobs_recovered_total",
            "Unfinished journaled jobs re-queued by startup recovery.",
        )
        self.jobs_deadlettered = r.counter(
            "ppchecker_jobs_deadlettered_total",
            "Jobs parked as poison pills after exhausting their "
            "redelivery budget.",
        )
        self.journal_size = r.gauge(
            "ppchecker_journal_size_bytes",
            "Size of the write-ahead job journal file.",
        )
        self.deadline_shed = r.counter(
            "ppchecker_deadline_shed_total",
            "Jobs shed because their request deadline expired "
            "before the work finished (at submit, at dequeue, or "
            "mid-check).",
        )
        self.stage_requests = r.counter(
            "ppchecker_stage_requests_total",
            "Pipeline stage lookups, by stage and outcome "
            "(execution | cache_hit | failure).",
            ("stage", "outcome"),
        )
        self.stage_latency = r.histogram(
            "ppchecker_stage_latency_seconds",
            "Pipeline stage wall time (cache hits included).",
            ("stage",),
        )

        def _cache_field(field_name: str) -> Callable[[], dict[str, float]]:
            def sample() -> dict[str, float]:
                from repro.memo import cache_stats

                # not every cache reports every field (only the
                # compiled-KB artifact ladder counts ``warnings``)
                return {name: float(row.get(field_name, 0))
                        for name, row in cache_stats().items()}
            return sample

        self.nlp_cache_hits = r.register(CallbackGaugeFamily(
            "ppchecker_nlp_cache_hits",
            "NLP/ESA memo-cache hits since process start, by cache.",
            "cache", _cache_field("hits"),
        ))
        self.nlp_cache_misses = r.register(CallbackGaugeFamily(
            "ppchecker_nlp_cache_misses",
            "NLP/ESA memo-cache misses since process start, by cache.",
            "cache", _cache_field("misses"),
        ))
        self.nlp_cache_entries = r.register(CallbackGaugeFamily(
            "ppchecker_nlp_cache_entries",
            "Live entries in each NLP/ESA memo cache.",
            "cache", _cache_field("entries"),
        ))
        self.nlp_cache_warnings = r.register(CallbackGaugeFamily(
            "ppchecker_nlp_cache_warnings",
            "Recovered corruption warnings (compiled-KB artifact "
            "ladder), by cache.",
            "cache", _cache_field("warnings"),
        ))

    # -- late-bound gauges -------------------------------------------------

    def register_retry_budget(self, budget) -> None:
        """Expose a :class:`repro.pipeline.resilience.RetryBudget`'s
        live token count (only registered when a budget is
        configured, so an unlimited service renders no misleading
        gauge)."""
        self.registry.gauge(
            "ppchecker_retry_budget_remaining",
            "Tokens left in the shared retry budget; retries are "
            "denied when it reaches zero.",
            callback=lambda: budget.remaining,
        )

    def register_thread_ledger(self, stats) -> None:
        """Expose a :class:`repro.pipeline.artifacts.PipelineStats`'s
        abandoned stage-thread counters."""
        self.registry.gauge(
            "ppchecker_abandoned_threads",
            "Timed-out stage threads still running (cancellation "
            "asks them to unwind; bounded in a healthy process).",
            callback=lambda: stats.abandoned_threads,
        )
        self.registry.gauge(
            "ppchecker_abandoned_threads_total",
            "Stage threads ever abandoned by a timeout.",
            callback=lambda: stats.abandoned_threads_total,
        )

    # -- PipelineStats listener -------------------------------------------

    def observe_stage(self, stage: str, *, hit: bool, failed: bool,
                      seconds: float) -> None:
        outcome = ("failure" if failed
                   else "cache_hit" if hit else "execution")
        self.stage_requests.inc(stage=stage, outcome=outcome)
        self.stage_latency.observe(seconds, stage=stage)

    def render(self) -> str:
        return self.registry.render()


__all__ = [
    "DEFAULT_BUCKETS",
    "CallbackGaugeFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ServiceMetrics",
]
