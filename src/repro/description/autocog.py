"""Description -> permission inference (AutoCog substitute).

AutoCog [41] learns a semantic model mapping description phrases to
permissions.  We reproduce its interface with an embedded phrase model
per permission: a description sentence votes for a permission when it
contains an indicative phrase or its noun phrases are ESA-similar to
the permission's model text.  The output -- the permission set a
description implies, hence ``Info_desc`` -- feeds Alg. 1 and Alg. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.description.permission_map import info_for_permission
from repro.nlp.sentences import split_sentences
from repro.semantics.esa import EsaModel, default_model
from repro.semantics.resources import InfoType

#: permission -> indicative description phrases (the semantic model).
PERMISSION_PHRASES: dict[str, tuple[str, ...]] = {
    "android.permission.ACCESS_FINE_LOCATION": (
        "your location", "gps", "nearby", "location aware",
        "navigation", "find your position", "track your route",
        "location based", "geolocation", "on the map",
        "current location", "turn-by-turn",
    ),
    "android.permission.ACCESS_COARSE_LOCATION": (
        "local weather", "weather forecast", "in your area",
        "your city", "closest store", "nearby places", "around you",
    ),
    "android.permission.READ_CONTACTS": (
        "your contacts", "address book", "contact list",
        "phone book", "sync with your contacts", "friends birthdays",
        "invite friends from contacts", "pick a contact",
    ),
    "android.permission.WRITE_CONTACTS": (
        "save to contacts", "add to your address book",
        "edit contacts", "merge duplicate contacts",
    ),
    "android.permission.GET_ACCOUNTS": (
        "sign in with your google account", "your accounts",
        "sync with your account", "log in with your account",
        "link your account", "account synchronization",
    ),
    "android.permission.READ_CALENDAR": (
        "your calendar", "calendar events", "appointments",
        "your schedule", "meeting reminders", "sync your calendar",
    ),
    "android.permission.CAMERA": (
        "take photos", "take pictures", "scan", "camera",
        "record video", "snap a picture", "photo editor",
        "barcode scanner", "qr code",
    ),
    "android.permission.RECORD_AUDIO": (
        "record audio", "voice", "microphone", "voice search",
        "record your voice", "speech recognition", "voice memo",
    ),
    "android.permission.READ_SMS": (
        "your messages", "read sms", "text messages",
        "sms backup", "message history",
    ),
    "android.permission.READ_PHONE_STATE": (
        "caller id", "identify calls", "block calls",
        "incoming call", "call log",
    ),
}


@dataclass
class AutoCog:
    """The description-analysis model.

    Inference is primarily lexical: a sentence votes for a permission
    when it contains one of the permission's model phrases.  The
    optional ESA fallback compares whole sentences against the model
    text; it widens recall at a precision cost (single-word concept
    collisions such as "book flights" vs. "address book"), so it is
    off by default and exercised by the ablation benchmarks.
    """

    esa: EsaModel | None = None
    threshold: float = 0.67
    use_esa_fallback: bool = False
    _model: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(PERMISSION_PHRASES)
    )

    def __post_init__(self) -> None:
        if self.esa is None:
            self.esa = default_model()

    def fingerprint(self) -> str:
        """Content hash of the description model; part of the
        ``description_permissions`` cache key."""
        from repro.hashing import fingerprint

        return fingerprint({
            "model": {perm: list(phrases)
                      for perm, phrases in self._model.items()},
            "threshold": self.threshold,
            "use_esa_fallback": self.use_esa_fallback,
        })

    def infer_permissions(self, description: str) -> set[str]:
        """Permissions the description's sentences imply."""
        inferred: set[str] = set()
        sentences = split_sentences(description)
        for sentence in sentences:
            low = sentence.lower()
            for permission, phrases in self._model.items():
                if permission in inferred:
                    continue
                for phrase in phrases:
                    if phrase in low:
                        inferred.add(permission)
                        break
                else:
                    if not self.use_esa_fallback:
                        continue
                    model_text = " ".join(phrases)
                    if self.esa.similarity(low, model_text) > self.threshold:
                        inferred.add(permission)
        return inferred

    def infer_infos(self, description: str) -> set[InfoType]:
        """Info_desc: the information the description implies."""
        infos: set[InfoType] = set()
        for permission in self.infer_permissions(description):
            infos.update(info_for_permission(permission))
        return infos


_DEFAULT: AutoCog | None = None


def _default() -> AutoCog:
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = AutoCog()
    return _DEFAULT


def infer_permissions(description: str) -> set[str]:
    return _default().infer_permissions(description)


def infer_infos(description: str) -> set[InfoType]:
    return _default().infer_infos(description)


__all__ = ["PERMISSION_PHRASES", "AutoCog", "infer_permissions",
           "infer_infos"]
