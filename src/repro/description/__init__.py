"""Description-analysis module (Section III-D).

The paper uses AutoCog to map an app's Google-Play description to
permissions, then maps permissions to private information via the
official documentation.  :mod:`repro.description.autocog` reimplements
the description->permission inference (semantic phrase model + ESA);
:mod:`repro.description.permission_map` holds the permission->
information mapping.
"""

from repro.description.autocog import AutoCog, infer_permissions
from repro.description.permission_map import (
    PERMISSION_INFO,
    info_for_permission,
    permissions_for_info,
)

__all__ = [
    "AutoCog",
    "infer_permissions",
    "PERMISSION_INFO",
    "info_for_permission",
    "permissions_for_info",
]
