"""Permission -> private-information mapping (Section III-D).

"We map the permissions to private information by analyzing the
official document.  For example, permission ACCESS_FINE_LOCATION is
mapped to 'location', 'latitude', 'longitude'."
"""

from __future__ import annotations

from repro.semantics.resources import InfoType

#: permission -> the information types it guards.
PERMISSION_INFO: dict[str, tuple[InfoType, ...]] = {
    "android.permission.ACCESS_FINE_LOCATION": (InfoType.LOCATION,),
    "android.permission.ACCESS_COARSE_LOCATION": (InfoType.LOCATION,),
    "android.permission.READ_PHONE_STATE": (
        InfoType.DEVICE_ID, InfoType.PHONE_NUMBER,
    ),
    "android.permission.READ_CONTACTS": (InfoType.CONTACT,),
    "android.permission.WRITE_CONTACTS": (InfoType.CONTACT,),
    "android.permission.GET_ACCOUNTS": (InfoType.ACCOUNT,),
    "android.permission.READ_CALENDAR": (InfoType.CALENDAR,),
    "android.permission.WRITE_CALENDAR": (InfoType.CALENDAR,),
    "android.permission.CAMERA": (InfoType.CAMERA,),
    "android.permission.RECORD_AUDIO": (InfoType.AUDIO,),
    "android.permission.READ_SMS": (InfoType.SMS,),
    "android.permission.RECEIVE_SMS": (InfoType.SMS,),
    "android.permission.READ_CALL_LOG": (InfoType.PHONE_NUMBER,),
    "com.android.browser.permission.READ_HISTORY_BOOKMARKS": (
        InfoType.BROWSER_HISTORY,
    ),
}

#: natural-language surface of each information type, used when a
#: permission-derived info is compared against policy phrases.
INFO_SURFACE: dict[InfoType, tuple[str, ...]] = {
    InfoType.LOCATION: ("location", "latitude", "longitude"),
    InfoType.DEVICE_ID: ("device id", "device identifier"),
    InfoType.PHONE_NUMBER: ("phone number",),
    InfoType.CONTACT: ("contact", "contacts"),
    InfoType.ACCOUNT: ("account",),
    InfoType.CALENDAR: ("calendar",),
    InfoType.CAMERA: ("camera", "photo"),
    InfoType.AUDIO: ("audio", "microphone"),
    InfoType.SMS: ("sms", "text message"),
    InfoType.BROWSER_HISTORY: ("browser history",),
    InfoType.IP_ADDRESS: ("ip address",),
    InfoType.COOKIE: ("cookie",),
    InfoType.APP_LIST: ("app list", "installed applications"),
    InfoType.EMAIL_ADDRESS: ("email address",),
    InfoType.PERSON_NAME: ("name",),
    InfoType.BIRTHDAY: ("birthday", "date of birth"),
    InfoType.PAYMENT: ("payment information", "credit card"),
    InfoType.HEALTH: ("health data", "fitness data"),
    InfoType.GOVERNMENT_ID: ("government id",
                             "social security number"),
}


def info_for_permission(permission: str) -> tuple[InfoType, ...]:
    return PERMISSION_INFO.get(permission, ())


def permissions_for_info(info: InfoType) -> tuple[str, ...]:
    return tuple(
        permission
        for permission, infos in PERMISSION_INFO.items()
        if info in infos
    )


__all__ = [
    "PERMISSION_INFO",
    "INFO_SURFACE",
    "info_for_permission",
    "permissions_for_info",
]
