"""Command-line interface.

Subcommands::

    python -m repro.cli check BUNDLE.json [--json] [--lib-policies DIR]
            [--cache-dir PATH] [--fail-on-findings]
            [--max-retries N] [--stage-timeout SECONDS]
        Run PPChecker over one serialized app bundle.

    python -m repro.cli batch-check BUNDLE.json... [--json PATH]
            [--workers N] [--cache-dir PATH] [--fail-on-findings]
            [--max-retries N] [--stage-timeout SECONDS]
            [--keep-going | --no-keep-going]
            [--journal PATH] [--resume]
        Run PPChecker over many bundles at once, fanned out over a
        worker pool and sharing one artifact cache (compliance-CI
        entry point).  With --keep-going (the default) a failing
        bundle is quarantined as a structured failure record instead
        of aborting the batch.  --journal checkpoints each finished
        bundle to a write-ahead journal; after a crash, --resume
        replays the finished ones and checks only the rest.

    python -m repro.cli study [--apps N] [--seed S] [--json PATH]
            [--workers N] [--cache-dir PATH] [--store json|sqlite]
            [--max-retries N] [--stage-timeout SECONDS]
            [--keep-going | --no-keep-going]
            [--journal PATH] [--resume]
            [--limit N] [--streaming] [--out DIR] [--out-shards N]
            [--shards N] [--window N]
        Run the full market study over the synthetic corpus and print
        the paper's tables.  --journal / --resume give the study
        crash-safe per-app checkpoints: a killed run restarted with
        --resume reproduces the uninterrupted run's report exactly.
        --streaming derives each app lazily and folds outcomes into
        constant-size aggregates (peak RSS bounded by --window, not
        by --apps); with --out DIR every per-app outcome also lands
        in sharded NDJSON files for later merge-results.  --shards N
        fans the checks out over N worker processes on the same
        consistent-hash plane as serve --shards (tables are
        byte-identical to the in-process run; pair with --cache-dir
        --store sqlite to share one artifact cache).  --limit checks
        only the first N apps of the corpus *without changing it*
        (unlike --apps, which regenerates a different corpus).

    python -m repro.cli merge-results DIR [--json PATH]
        Reconstitute the study tables from a --streaming --out shard
        directory, without re-running any checks (byte-identical to
        the run's own tables).

    python -m repro.cli bootstrap [--top N]
        Train the pattern bootstrapping and print the top-N patterns.

    python -m repro.cli genpolicy BUNDLE.json
        Generate a covering privacy policy from the app's bytecode
        (the AutoPPG extension).

    python -m repro.cli export-corpus INDEX PATH
        Serialize one synthetic-corpus app to a bundle JSON (handy for
        inspecting or replaying single apps).

    python -m repro.cli serve [--host H] [--port P] [--workers N]
            [--queue-size N] [--cache-dir PATH] [--lib-policies DIR]
            [--max-retries N] [--stage-timeout SECONDS]
            [--request-timeout SECONDS] [--drain-timeout SECONDS]
            [--fault-plan PATH] [--state-dir DIR]
            [--max-redeliveries N]
        Run the long-running check service: a REST API over a shared,
        warm pipeline with a bounded job queue, request coalescing,
        and /healthz + /metrics endpoints (see docs/API.md).  With
        --state-dir, accepted jobs are journaled and replayed across
        restarts; jobs that crash the process more than
        --max-redeliveries times are dead-lettered
        (GET /v1/deadletter).

``repro --version`` prints the package version.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core.checker import PPChecker


def _lib_policy_source(directory: str | None):
    if directory is None:
        from repro.corpus.libpolicies import lib_policy_text

        def from_corpus(lib_id: str) -> str | None:
            try:
                return lib_policy_text(lib_id)
            except KeyError:
                return None

        return from_corpus

    def from_directory(lib_id: str) -> str | None:
        for extension in (".txt", ".html"):
            path = os.path.join(directory, lib_id + extension)
            if os.path.exists(path):
                with open(path, encoding="utf-8") as handle:
                    return handle.read()
        return None

    return from_directory


def _build_checker(args: argparse.Namespace, lib_policy_source) -> PPChecker:
    """A checker honoring the shared --cache-dir and resilience
    flags (--max-retries / --stage-timeout / --fault-plan /
    --deadline / --retry-budget)."""
    from repro.pipeline.artifacts import build_store
    from repro.pipeline.faults import FaultPlan
    from repro.pipeline.resilience import RetryBudget, RetryPolicy

    fault_plan = None
    fault_path = getattr(args, "fault_plan", None)
    if fault_path is not None:
        fault_plan = FaultPlan.from_json_file(fault_path)
    budget = None
    capacity = getattr(args, "retry_budget", None)
    if capacity is not None:
        budget = RetryBudget(
            capacity, getattr(args, "retry_budget_refill", 1.0))
    return PPChecker(
        lib_policy_source=lib_policy_source,
        artifact_store=build_store(
            cache_dir=getattr(args, "cache_dir", None),
            backend=getattr(args, "store", "json"),
        ),
        retry_policy=RetryPolicy(
            max_retries=getattr(args, "max_retries", 0),
            stage_timeout=getattr(args, "stage_timeout", None),
            budget=budget,
        ),
        deadline_seconds=getattr(args, "deadline", None),
        fault_plan=fault_plan,
    )


def _print_stage_stats(stats) -> None:
    print("\n== pipeline ==")
    print(f"  {'stage':<26} {'exec':>6} {'hits':>6} {'fail':>6} "
          f"{'hit%':>6} {'seconds':>8}")
    for name, row in stats.to_dict().items():
        print(f"  {name:<26} {row['executions']:>6} "
              f"{row['cache_hits']:>6} {row['failures']:>6} "
              f"{row['hit_rate'] * 100:>5.1f}% "
              f"{row['seconds']:>8.3f}")
    caches = stats.nlp_caches()
    if not caches:
        return
    print("\n== nlp caches ==")
    print(f"  {'cache':<26} {'hits':>8} {'miss':>8} {'hit%':>6} "
          f"{'entries':>8}")
    for name, row in caches.items():
        lookups = row["hits"] + row["misses"]
        rate = row["hits"] / lookups * 100 if lookups else 0.0
        print(f"  {name:<26} {row['hits']:>8} {row['misses']:>8} "
              f"{rate:>5.1f}% {row['entries']:>8}")


def _print_recovery(recovery) -> None:
    print("== recovery ==")
    print(f"  {'journal':<22} {recovery.path}")
    print(f"  {'resumed':<22} {'yes' if recovery.resumed else 'no'}")
    print(f"  {'records replayed':<22} {recovery.records_replayed}")
    print(f"  {'reports replayed':<22} {recovery.reports_replayed}")
    print(f"  {'quarantine replayed':<22} "
          f"{recovery.quarantine_replayed}")
    print(f"  {'torn bytes dropped':<22} {recovery.torn_bytes}")
    print()


def _open_run_log(args: argparse.Namespace, meta: dict):
    """``(runlog, skip)`` for --journal/--resume, or ``(None, {})``
    without --journal.  Raises SystemExit(2) on a journal that
    belongs to a different run or would be clobbered."""
    if args.journal is None:
        return None, {}
    from repro.durability.study_log import RunLogError, open_run_log

    try:
        runlog, skip = open_run_log(args.journal, meta,
                                    resume=args.resume)
    except RunLogError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc
    _print_recovery(runlog.recovery)
    return runlog, skip


def _print_quarantine(failures) -> None:
    if not failures:
        return
    print("\n== quarantine ==")
    for failure in failures:
        print(f"  {failure.package:<44} {failure.stage}: "
              f"{failure.error} after {failure.attempts} attempt(s)")


def cmd_check(args: argparse.Namespace) -> int:
    from repro.android.serialization import load_bundle

    bundle = load_bundle(args.bundle)
    checker = _build_checker(
        args, _lib_policy_source(args.lib_policies)
    )
    report = checker.check(bundle)
    if args.json:
        from repro.core.schema import versioned

        json.dump(versioned(report.to_dict()), sys.stdout, indent=2,
                  sort_keys=True)
        print()
    else:
        print(report.summary())
    return 1 if args.fail_on_findings and report.has_problem else 0


def cmd_batch_check(args: argparse.Namespace) -> int:
    from repro.android.serialization import bundle_to_dict, load_bundle
    from repro.core.report import AppFailure, partition_outcomes
    from repro.hashing import fingerprint

    checker = _build_checker(
        args, _lib_policy_source(args.lib_policies)
    )
    bundles = [load_bundle(path) for path in args.bundles]
    # outcomes are keyed by bundle content digest, so a resumed run
    # matches journal records to bundles regardless of path order
    keys = [fingerprint(bundle_to_dict(bundle)) for bundle in bundles]
    runlog, skip = _open_run_log(args, {
        "kind": "batch-check",
        "bundles": fingerprint(sorted(keys)),
    })
    on_error = "quarantine" if args.keep_going else "raise"
    if runlog is None:
        outcomes = checker.check_batch(bundles, workers=args.workers,
                                       on_error=on_error)
    else:
        key_by_id = {id(b): k for b, k in zip(bundles, keys)}
        by_key = dict(skip)
        remaining = [b for b, k in zip(bundles, keys)
                     if k not in by_key]

        def checkpoint(bundle, outcome) -> None:
            runlog.record_outcome(key_by_id[id(bundle)], outcome)

        fresh = checker.check_batch(remaining, workers=args.workers,
                                    on_error=on_error,
                                    on_outcome=checkpoint)
        for bundle, outcome in zip(remaining, fresh):
            by_key[key_by_id[id(bundle)]] = outcome
        outcomes = [by_key[key] for key in keys]
    reports, failures = partition_outcomes(outcomes)

    flagged = sum(1 for report in reports if report.has_problem)
    for outcome in outcomes:
        if isinstance(outcome, AppFailure):
            print(f"  {outcome.package:<44} FAILED at "
                  f"{outcome.stage}: {outcome.error}")
        else:
            kinds = ",".join(sorted(outcome.problem_kinds())) or "clean"
            print(f"  {outcome.package:<44} {kinds}")
    print(f"{len(reports)} apps checked, {flagged} with findings, "
          f"{len(failures)} quarantined")
    _print_quarantine(failures)
    _print_stage_stats(checker.stats)

    if args.json:
        from repro.core.schema import versioned

        payload = versioned({
            "reports": [report.to_dict() for report in reports],
            "quarantine": [failure.to_dict() for failure in failures],
            "pipeline_stats": checker.stats.to_dict(),
            "nlp_caches": checker.stats.nlp_caches(),
        })
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if runlog is not None:
        runlog.close()
    return 1 if args.fail_on_findings and (flagged or failures) else 0


def _print_study_tables(result) -> None:
    """The ``== study ==`` tables; *result* is a
    :class:`~repro.core.study.StudyResult` or
    :class:`~repro.core.study.StudyAggregate` (same accessors).
    Ties sort deterministically so streaming, materialized, and
    merged runs print byte-identical tables."""
    print("== study summary ==")
    for key, value in result.summary().items():
        if isinstance(value, float):
            print(f"  {key:<30} {value:.3f}")
        else:
            print(f"  {key:<30} {value}")
    print("\n== Table III ==")
    for permission, count in sorted(result.table3().items(),
                                    key=lambda kv: (-kv[1], kv[0])):
        print(f"  {permission:<50} {count}")
    print("\n== Fig. 13 ==")
    dist, retained = result.fig13()
    for info, count in sorted(dist.items(),
                              key=lambda kv: (-kv[1], kv[0].value)):
        print(f"  {info.value:<20} {count}")
    print(f"  retained records: {retained}")
    print("\n== Table IV ==")
    for name, row in result.table4().items():
        print(f"  {name:<20} TP={row.tp} FP={row.fp} "
              f"P={row.precision:.3f} R={row.recall:.3f} "
              f"F1={row.f1:.3f}")
    _print_quarantine([result.failures[pkg]
                       for pkg in sorted(result.failures)])


def _write_study_json(result, path: str) -> None:
    from repro.core.schema import versioned

    payload = versioned(result.to_dict())
    if result.stats is not None:
        payload["pipeline_stats"] = result.stats.to_dict()
        payload["nlp_caches"] = result.stats.nlp_caches()
    if result.telemetry is not None:
        payload["telemetry"] = result.telemetry
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"\nwrote {path}")


def _print_deviations(result, total: int) -> None:
    if total < 1197:
        return
    deviations = result.deviations_from_paper()
    if deviations:
        print("\ndeviations from the paper:")
        for key, (paper, measured) in deviations.items():
            print(f"  {key}: paper {paper}, measured {measured}")
    else:
        print("\nno deviations from the paper's summary numbers")


def _shard_options(args: argparse.Namespace):
    """Pipeline flags the ``--shards`` worker processes rebuild their
    checkers from (the process-plane analogue of _build_checker)."""
    from repro.core.study import ShardOptions

    return ShardOptions(
        cache_dir=args.cache_dir,
        store_backend=args.store,
        max_retries=args.max_retries,
        stage_timeout=args.stage_timeout,
        fault_plan=args.fault_plan,
    )


def _study_meta(args: argparse.Namespace) -> dict:
    meta = {"kind": "study", "seed": args.seed, "apps": args.apps}
    if args.limit is not None:
        meta["limit"] = args.limit
    return meta


def cmd_study(args: argparse.Namespace) -> int:
    if args.out is not None and not args.streaming:
        print("error: --out requires --streaming", file=sys.stderr)
        return 2
    if args.streaming and args.html:
        print("error: --html needs per-app reports; omit --streaming",
              file=sys.stderr)
        return 2
    if args.streaming:
        return _cmd_study_streaming(args)
    runlog, skip = _open_run_log(args, _study_meta(args))
    if args.shards > 0:
        from repro.core.study import run_study_sharded

        result = run_study_sharded(
            seed=args.seed, n_apps=args.apps, shards=args.shards,
            limit=args.limit, keep_going=args.keep_going,
            skip=skip or None,
            on_outcome=runlog.record_outcome if runlog is not None
            else None,
            options=_shard_options(args),
        )
    else:
        from repro.core.study import run_study
        from repro.corpus.appstore import generate_app_store

        store = generate_app_store(seed=args.seed, n_apps=args.apps)
        checker = _build_checker(args, store.lib_policy)
        result = run_study(
            store, checker=checker, limit=args.limit,
            workers=args.workers,
            keep_going=args.keep_going,
            skip=skip or None,
            on_outcome=runlog.record_outcome if runlog is not None
            else None,
        )
    total = result.n_apps

    _print_study_tables(result)
    if result.stats is not None:
        _print_stage_stats(result.stats)

    if args.html:
        from repro.core.html_report import write_study_html
        write_study_html(result, args.html)
        print(f"\nwrote {args.html}")
    if args.json:
        _write_study_json(result, args.json)

    _print_deviations(result, total)
    if runlog is not None:
        runlog.close()
    return 0


def _cmd_study_streaming(args: argparse.Namespace) -> int:
    from repro.core.results import ResultShardError, ShardedResultWriter
    from repro.core.study import run_study_streaming
    from repro.corpus.appstore import CorpusSpec

    spec = CorpusSpec(seed=args.seed, n_apps=args.apps)
    # with --shards the worker processes build their own checkers
    checker = (None if args.shards > 0
               else _build_checker(args, spec.lib_policy))
    meta = _study_meta(args)
    runlog, skip = _open_run_log(args, meta)
    sinks = []
    writer = None
    if args.out is not None:
        try:
            writer = ShardedResultWriter(args.out, meta,
                                         shards=args.out_shards)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        sinks.append(writer)
    try:
        result = run_study_streaming(
            spec, checker=checker, limit=args.limit,
            workers=args.workers, window=args.window,
            keep_going=args.keep_going,
            skip=skip or None,
            on_outcome=runlog.record_outcome if runlog is not None
            else None,
            sinks=sinks,
            shards=args.shards,
            shard_options=_shard_options(args) if args.shards > 0
            else None,
        )
    except ResultShardError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if writer is not None:
            writer.abort()
        return 2
    except BaseException:
        # crash path: leave only .tmp shards behind, never a torn
        # finalized shard -- --resume rebuilds them from the journal
        if writer is not None:
            writer.abort()
        raise
    if writer is not None:
        writer.close()
        print(f"wrote {writer.shards} result shard(s) to {args.out}")

    _print_study_tables(result)
    if result.stats is not None:
        _print_stage_stats(result.stats)

    if args.json:
        _write_study_json(result, args.json)

    _print_deviations(result, result.n_apps)
    if runlog is not None:
        runlog.close()
    return 0


def cmd_merge_results(args: argparse.Namespace) -> int:
    from repro.core.results import ResultShardError
    from repro.core.study import merge_study_results

    try:
        result = merge_study_results(args.dir)
    except (ResultShardError, OSError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_study_tables(result)
    if args.json:
        _write_study_json(result, args.json)
    _print_deviations(result, result.n_apps)
    return 0


def cmd_screen(args: argparse.Namespace) -> int:
    from repro.core.report import AppFailure
    from repro.core.screening import screen
    from repro.core.study import run_study_streaming
    from repro.corpus.appstore import CorpusSpec

    # stream the corpus: each app is derived, checked, and freed;
    # only the (small) reports accumulate for ranking
    spec = CorpusSpec(seed=args.seed, n_apps=args.apps)
    checker = PPChecker(lib_policy_source=spec.lib_policy)
    reports = {}

    class _CollectReports:
        def emit(self, index, key, outcome):
            if not isinstance(outcome, AppFailure):
                reports[key] = outcome

    run_study_streaming(spec, checker=checker,
                        sinks=[_CollectReports()])
    report = screen(reports, min_score=args.min_score)

    print(f"{'rank':>4} {'score':>6} {'package':<40} kinds / headline")
    for rank, entry in enumerate(report.top(args.top), start=1):
        print(f"{rank:>4} {entry.score:>6.1f} {entry.package:<40} "
              f"{','.join(entry.kinds)}: {entry.headline}")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(report.to_csv())
        print(f"wrote {args.csv}")
    return 0


def cmd_bootstrap(args: argparse.Namespace) -> int:
    from repro.corpus.sentences import generate_labeled_sentences
    from repro.policy.bootstrap import Bootstrapper, top_n_patterns

    train, _val = generate_labeled_sentences()
    bootstrapper = Bootstrapper(train)
    scored = bootstrapper.score(bootstrapper.run())
    if args.save:
        from repro.policy.pattern_store import save_patterns
        save_patterns(scored, args.save)
        print(f"saved {len(scored)} patterns to {args.save}")
    print(f"learned {len(scored)} patterns; top {args.top}:")
    print(f"{'chain':<30} {'category':<10} {'pos':>5} {'neg':>5} "
          f"{'score':>7}")
    for sp in scored[: args.top]:
        chain = ">".join(sp.pattern.chain)
        category = sp.pattern.category.value if sp.pattern.category \
            else "-"
        print(f"{chain:<30} {category:<10} {sp.pos:>5} {sp.neg:>5} "
              f"{sp.score:>7.2f}")
    _ = top_n_patterns(scored, args.top)
    return 0


def cmd_genpolicy(args: argparse.Namespace) -> int:
    from repro.android.serialization import load_bundle
    from repro.policy.autoppg import generate_policy

    bundle = load_bundle(args.bundle)
    print(generate_policy(bundle.apk, app_name=bundle.package))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.pipeline.faults import FaultPlan
    from repro.service.runner import ServiceConfig
    from repro.service.server import serve

    if args.shards > 0:
        from repro.service.cluster import ClusterConfig, serve_cluster

        return serve_cluster(ClusterConfig(
            host=args.host,
            port=args.port,
            port_file=args.port_file,
            shards=args.shards,
            workers=args.workers,
            queue_size=args.queue_size,
            cache_dir=args.cache_dir,
            state_dir=args.state_dir,
            lib_policies=args.lib_policies,
            fault_plan=args.fault_plan,
            max_retries=args.max_retries,
            stage_timeout=args.stage_timeout,
            request_timeout=args.request_timeout,
            drain_timeout=args.drain_timeout,
            max_redeliveries=args.max_redeliveries,
            completed_jobs=args.completed_jobs,
            cache_entries=args.cache_entries,
            retry_budget=args.retry_budget,
            retry_budget_refill=args.retry_budget_refill,
            default_deadline=args.deadline,
            hedge=args.hedge,
            hedge_delay=args.hedge_delay,
            breaker_failures=args.breaker_failures,
            breaker_latency=args.breaker_latency,
            breaker_cooloff=args.breaker_cooloff,
        ))
    fault_plan = None
    if args.fault_plan is not None:
        fault_plan = FaultPlan.from_json_file(args.fault_plan)
    return serve(ServiceConfig(
        host=args.host,
        port=args.port,
        port_file=args.port_file,
        workers=args.workers,
        queue_size=args.queue_size,
        cache_dir=args.cache_dir,
        store_backend=args.store,
        completed_jobs=args.completed_jobs,
        cache_entries=args.cache_entries,
        max_retries=args.max_retries,
        stage_timeout=args.stage_timeout,
        fault_plan=fault_plan,
        lib_policy_source=_lib_policy_source(args.lib_policies),
        request_timeout=args.request_timeout,
        drain_timeout=args.drain_timeout,
        state_dir=args.state_dir,
        max_redeliveries=args.max_redeliveries,
        retry_budget=args.retry_budget,
        retry_budget_refill=args.retry_budget_refill,
        default_deadline=args.deadline,
    ))


def cmd_export_corpus(args: argparse.Namespace) -> int:
    from repro.android.serialization import save_bundle
    from repro.corpus.appstore import CorpusSpec

    # per-index derivation: only this app is built (the planted
    # layout is bounded, so random access stays exact)
    spec = CorpusSpec()
    try:
        app = spec.app(args.index)
    except IndexError:
        print(f"index out of range (0..{len(spec) - 1})",
              file=sys.stderr)
        return 2
    save_bundle(app.bundle, args.path)
    print(f"wrote {app.package} to {args.path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PPChecker: detect incomplete, incorrect, and "
                    "inconsistent Android privacy policies",
    )
    from repro import __version__

    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_cache_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache-dir", default=None,
                       help="persist stage artifacts under this "
                            "directory (reruns skip unchanged inputs)")

    def add_journal(p: argparse.ArgumentParser) -> None:
        p.add_argument("--journal", default=None, metavar="PATH",
                       help="checkpoint every finished app to this "
                            "write-ahead journal (crash-safe; see "
                            "--resume)")
        p.add_argument("--resume", action="store_true",
                       help="replay finished apps from --journal "
                            "and check only the rest; the final "
                            "report matches an uninterrupted run")

    def add_resilience(p: argparse.ArgumentParser,
                       batch: bool = False) -> None:
        p.add_argument("--max-retries", type=int, default=0,
                       help="retry a failing stage this many times "
                            "with exponential backoff (default: 0)")
        p.add_argument("--stage-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="cut off any single stage execution "
                            "after this many seconds")
        p.add_argument("--fault-plan", default=None, metavar="PATH",
                       help="inject faults from this JSON plan "
                            "(test/benchmark harness; see "
                            "repro.pipeline.faults)")
        p.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget per check; stage "
                            "timeouts, retries, and backoff all fit "
                            "inside it, and expired work is shed "
                            "(the service answers 504), never left "
                            "half-running (default: unbounded)")
        p.add_argument("--retry-budget", type=float, default=None,
                       metavar="TOKENS",
                       help="capacity of the shared retry token "
                            "bucket; when dry, a failing stage is "
                            "terminal instead of retried, so a "
                            "brownout cannot amplify into a retry "
                            "storm (default: unlimited)")
        p.add_argument("--retry-budget-refill", type=float,
                       default=1.0, metavar="PER_SECOND",
                       help="tokens the retry budget regains per "
                            "second (default: 1.0)")
        if batch:
            p.add_argument("--keep-going", default=True,
                           action=argparse.BooleanOptionalAction,
                           help="quarantine failing apps and finish "
                                "the batch (--no-keep-going aborts "
                                "on the first failure)")

    check = sub.add_parser("check", help="check one app bundle")
    check.add_argument("bundle", help="path to a bundle JSON")
    check.add_argument("--json", action="store_true",
                       help="emit the report as JSON")
    check.add_argument("--lib-policies", default=None,
                       help="directory of <lib_id>.txt policies")
    check.add_argument("--fail-on-findings", action="store_true",
                       help="exit 1 when the report has findings "
                            "(for compliance CI jobs)")
    add_cache_dir(check)
    add_resilience(check)
    check.set_defaults(func=cmd_check)

    batch = sub.add_parser("batch-check",
                           help="check many app bundles at once")
    batch.add_argument("bundles", nargs="+",
                       help="paths to bundle JSONs")
    batch.add_argument("--json", default=None,
                       help="write all reports + pipeline stats to "
                            "this JSON path")
    batch.add_argument("--lib-policies", default=None,
                       help="directory of <lib_id>.txt policies")
    batch.add_argument("--workers", type=int, default=1,
                       help="worker threads (default: serial)")
    batch.add_argument("--fail-on-findings", action="store_true",
                       help="exit 1 when any report has findings "
                            "or any app is quarantined")
    add_cache_dir(batch)
    add_resilience(batch, batch=True)
    add_journal(batch)
    batch.set_defaults(func=cmd_batch_check)

    study = sub.add_parser("study", help="run the market study")
    study.add_argument("--apps", type=int, default=1197,
                       help="corpus size; changing it regenerates a "
                            "*different* deterministic corpus "
                            "(default: 1197)")
    study.add_argument("--seed", type=int, default=2016)
    study.add_argument("--limit", type=int, default=None, metavar="N",
                       help="check only the first N apps of the "
                            "corpus without changing it (unlike "
                            "--apps, every checked report is "
                            "identical to the full run's)")
    study.add_argument("--json", default=None,
                       help="also write results to this JSON path")
    study.add_argument("--html", default=None,
                       help="also render an HTML dashboard here")
    study.add_argument("--workers", type=int, default=1,
                       help="worker threads (default: serial)")
    study.add_argument("--streaming", action="store_true",
                       help="derive apps lazily and fold outcomes "
                            "into constant-size aggregates (peak RSS "
                            "bounded by --window, not --apps)")
    study.add_argument("--out", default=None, metavar="DIR",
                       help="with --streaming: write every per-app "
                            "outcome to sharded NDJSON files in DIR "
                            "(see merge-results)")
    study.add_argument("--out-shards", type=int, default=4,
                       metavar="N",
                       help="result file count for --out "
                            "(default: 4)")
    study.add_argument("--shards", type=int, default=0, metavar="N",
                       help="fan the checks out over N worker "
                            "*processes* on the same consistent-hash "
                            "plane as serve --shards; the tables are "
                            "byte-identical to a single-process run "
                            "(default: 0 = in-process)")
    study.add_argument("--store", default="json",
                       choices=("json", "sqlite"),
                       help="disk tier behind --cache-dir: one JSON "
                            "file per artifact, or one sqlite "
                            "database safe for concurrent --shards "
                            "worker processes (default: json)")
    study.add_argument("--window", type=int, default=None,
                       metavar="N",
                       help="max in-flight apps for --streaming "
                            "(default: 4x --workers)")
    add_cache_dir(study)
    add_resilience(study, batch=True)
    add_journal(study)
    study.set_defaults(func=cmd_study)

    merge = sub.add_parser(
        "merge-results",
        help="rebuild study tables from --streaming --out shards")
    merge.add_argument("dir", help="shard directory written by "
                                   "study --streaming --out")
    merge.add_argument("--json", default=None,
                       help="also write results to this JSON path")
    merge.set_defaults(func=cmd_merge_results)

    screen = sub.add_parser("screen",
                            help="rank questionable apps by severity")
    screen.add_argument("--apps", type=int, default=1197)
    screen.add_argument("--seed", type=int, default=2016)
    screen.add_argument("--top", type=int, default=20)
    screen.add_argument("--min-score", type=float, default=0.0)
    screen.add_argument("--csv", default=None,
                        help="also write the full worklist as CSV")
    screen.set_defaults(func=cmd_screen)

    bootstrap = sub.add_parser("bootstrap",
                               help="train pattern bootstrapping")
    bootstrap.add_argument("--top", type=int, default=20)
    bootstrap.add_argument("--save", default=None,
                           help="persist the ranked patterns as JSON")
    bootstrap.set_defaults(func=cmd_bootstrap)

    genpolicy = sub.add_parser("genpolicy",
                               help="generate a policy from bytecode")
    genpolicy.add_argument("bundle", help="path to a bundle JSON")
    genpolicy.set_defaults(func=cmd_genpolicy)

    srv = sub.add_parser("serve",
                         help="run the long-running check service")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default: 127.0.0.1)")
    srv.add_argument("--port", type=int, default=8742,
                     help="listen port; 0 binds an ephemeral port "
                          "(default: 8742)")
    srv.add_argument("--port-file", default=None, metavar="PATH",
                     help="write the actually-bound port here "
                          "(atomically, after the listener binds) -- "
                          "with --port 0 this is how supervisors and "
                          "tests find the service without a port race")
    srv.add_argument("--store", default="json",
                     choices=("json", "sqlite"),
                     help="disk tier behind --cache-dir: one JSON "
                          "file per artifact, or one sqlite database "
                          "safe for concurrent worker processes "
                          "(default: json)")
    srv.add_argument("--shards", type=int, default=0, metavar="N",
                     help="run N pipeline worker *processes* behind "
                          "a lightweight accept process that routes "
                          "jobs by content hash; --workers becomes "
                          "per-shard threads, --cache-dir becomes a "
                          "shared sqlite artifact store, and a dead "
                          "shard is respawned with its journal "
                          "replayed (default: 0 = single process)")
    srv.add_argument("--workers", type=int, default=4,
                     help="check worker threads (default: 4)")
    srv.add_argument("--queue-size", type=int, default=64,
                     help="job queue capacity; a full queue answers "
                          "429 + Retry-After (default: 64)")
    srv.add_argument("--lib-policies", default=None,
                     help="directory of <lib_id>.txt policies")
    srv.add_argument("--request-timeout", type=float, default=300.0,
                     metavar="SECONDS",
                     help="how long a synchronous /v1/check waits "
                          "before answering 504 (default: 300)")
    srv.add_argument("--drain-timeout", type=float, default=10.0,
                     metavar="SECONDS",
                     help="SIGTERM drain budget before queued jobs "
                          "are abandoned (default: 10)")
    srv.add_argument("--state-dir", default=None, metavar="DIR",
                     help="journal accepted jobs under this "
                          "directory and replay unfinished ones on "
                          "restart (default: in-memory only)")
    srv.add_argument("--max-redeliveries", type=int, default=3,
                     metavar="N",
                     help="deliveries a journaled job may burn "
                          "before restart recovery dead-letters it "
                          "(default: 3)")
    srv.add_argument("--completed-jobs", type=int, default=256,
                     metavar="N",
                     help="completed jobs kept resolvable by id and "
                          "content hash, per process (default: 256)")
    srv.add_argument("--cache-entries", type=int, default=8192,
                     metavar="N",
                     help="memory-tier artifact cache capacity per "
                          "process, entries (default: 8192)")
    srv.add_argument("--hedge", default=True,
                     action=argparse.BooleanOptionalAction,
                     help="with --shards: race a slow /v1/check "
                          "primary against a healthy peer after the "
                          "hedge delay; content-addressed checks are "
                          "idempotent, so the first answer wins "
                          "(default: on)")
    srv.add_argument("--hedge-delay", type=float, default=1.0,
                     metavar="SECONDS",
                     help="cold-start hedge delay; adapts to the "
                          "observed p95 check latency once enough "
                          "samples arrive (default: 1.0)")
    srv.add_argument("--breaker-failures", type=int, default=5,
                     metavar="N",
                     help="consecutive failed (or brownout-slow) "
                          "requests that open a shard's circuit "
                          "breaker at the front (default: 5)")
    srv.add_argument("--breaker-latency", type=float, default=None,
                     metavar="SECONDS",
                     help="treat a slower-than-this success as a "
                          "brownout failure for the breaker "
                          "(default: latency never trips it)")
    srv.add_argument("--breaker-cooloff", type=float, default=5.0,
                     metavar="SECONDS",
                     help="seconds an open breaker waits before "
                          "admitting a single half-open probe "
                          "(default: 5.0)")
    add_cache_dir(srv)
    add_resilience(srv)
    srv.set_defaults(func=cmd_serve)

    export = sub.add_parser("export-corpus",
                            help="serialize one corpus app")
    export.add_argument("index", type=int)
    export.add_argument("path")
    export.set_defaults(func=cmd_export_corpus)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
