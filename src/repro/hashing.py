"""Content hashing for the pipeline's cache keys.

Every pipeline stage (:mod:`repro.pipeline`) is keyed by a SHA-256
digest of a canonical JSON rendering of its inputs: same content, same
key, across processes and machines.  This module is a dependency leaf
so that any layer (policy, android, description) can fingerprint its
own configuration without import cycles.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def canonical_json(doc: Any) -> str:
    """The canonical rendering: sorted keys, no whitespace, raw UTF-8.

    ``doc`` must be JSON-serializable (tuples serialize as lists, so a
    tuple and the equal list share a digest -- intended).
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False)


def fingerprint(doc: Any) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of *doc*."""
    return hashlib.sha256(
        canonical_json(doc).encode("utf-8")
    ).hexdigest()


def fingerprint_text(text: str) -> str:
    """SHA-256 hex digest of raw text (no JSON canonicalization)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


__all__ = ["canonical_json", "fingerprint", "fingerprint_text"]
