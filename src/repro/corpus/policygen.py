"""Privacy-policy text generation.

Renders an :class:`repro.corpus.plans.AppPlan`'s policy contents --
positive coverage, denials, tricky sentences, disclaimers -- into
policy prose, plus the third-party lib policies.  Template choices are
deterministic per (package, resource) so the corpus is reproducible.

Boilerplate sentences are curated to avoid the four main-verb
categories with extractable personal-information objects, so clean
policies produce no spurious statements.
"""

from __future__ import annotations

from repro.policy.verbs import VerbCategory
from repro.semantics.resources import InfoType

#: phrase used in policy text for each information type (an exact
#: ontology alias, so coverage matching is deterministic).
INFO_PHRASES: dict[InfoType, tuple[str, ...]] = {
    InfoType.LOCATION: ("location", "location information",
                        "precise location"),
    InfoType.DEVICE_ID: ("device id", "device identifier",
                         "unique device identifier"),
    InfoType.IP_ADDRESS: ("ip address",),
    InfoType.COOKIE: ("cookies",),
    InfoType.CONTACT: ("contacts", "contact list", "address book"),
    InfoType.ACCOUNT: ("account information", "account"),
    InfoType.CALENDAR: ("calendar",),
    InfoType.PHONE_NUMBER: ("phone number", "telephone number"),
    InfoType.CAMERA: ("photos", "camera"),
    InfoType.AUDIO: ("microphone", "audio"),
    InfoType.APP_LIST: ("installed applications", "app list"),
    InfoType.SMS: ("sms", "text messages"),
    InfoType.EMAIL_ADDRESS: ("email address",),
    InfoType.PERSON_NAME: ("name",),
    InfoType.BIRTHDAY: ("birthday", "date of birth"),
    InfoType.BROWSER_HISTORY: ("browser history",),
}

POSITIVE_TEMPLATES: dict[VerbCategory, tuple[str, ...]] = {
    VerbCategory.COLLECT: (
        "We may collect your {res}.",
        "When you use the app, we collect your {res}.",
        "We are allowed to access your {res}.",
        "Your {res} will be collected to provide the service.",
        "We may receive your {res} from your device.",
        "We are able to obtain your {res}.",
    ),
    VerbCategory.USE: (
        "We use your {res} to provide and improve the service.",
        "Your {res} may be processed for analytics purposes.",
        "We may use your {res} to personalize your experience.",
    ),
    VerbCategory.RETAIN: (
        "We will store your {res} on our servers.",
        "Your {res} may be retained for as long as necessary.",
        "We may keep your {res} to speed up the app.",
    ),
    VerbCategory.DISCLOSE: (
        "We may share your {res} with our partners.",
        "Your {res} may be disclosed to third party companies.",
        "We may provide your {res} to advertisers.",
    ),
}

NEGATIVE_TEMPLATES: dict[VerbCategory, tuple[str, ...]] = {
    VerbCategory.COLLECT: (
        "We will not collect your {res}.",
        "We do not gather your {res}.",
        "Your {res} will never be collected.",
    ),
    VerbCategory.USE: (
        "We will not use your {res}.",
        "We do not process your {res}.",
    ),
    VerbCategory.RETAIN: (
        "We will not store your {res}.",
        "We do not retain your {res}.",
    ),
    VerbCategory.DISCLOSE: (
        "We will not share your {res} with third parties.",
        "We will never disclose your {res}.",
    ),
}

#: denial with an overridden verb (the inconsistency false negatives).
FN_VERB_TEMPLATE = "We will never {verb} your {res}."

#: the extraction-breaking "coverage" sentence (Section V-C's false
#: positives): the covered resource hides in a fronted prepositional
#: phrase, so the extractor only sees the direct object.
TRICKY_TEMPLATES: tuple[str, ...] = (
    "In addition to your {res}, we may also collect the nickname you "
    "have chosen for your device.",
    "Apart from your {res}, we may also collect the nickname shown on "
    "your profile.",
)

BOILERPLATE: tuple[str, ...] = (
    "This privacy policy applies to all users of the app.",
    "We respect your privacy and work hard to safeguard it.",
    "By installing the app you accept the terms below.",
    "We may update this policy from time to time.",
    "If you have any questions about this policy, please contact us.",
    "Your continued use of the app constitutes acceptance of these "
    "terms.",
)

DISCLAIMER_TEXT = (
    "We encourage you to review the privacy practices of these third "
    "parties before disclosing any personally identifiable "
    "information, as we are not responsible for the privacy practices "
    "of those sites."
)

LIB_POINTER_TEXT = (
    "The app embeds third party components whose conduct is governed "
    "by their own policies."
)


def _pick(options: tuple[str, ...], key: str) -> str:
    return options[_stable_hash(key) % len(options)]


def _stable_hash(text: str) -> int:
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) % 1_000_000_007
    return value


def info_phrase(info: InfoType, key: str) -> str:
    return _pick(INFO_PHRASES[info], key)


def positive_sentence(category: VerbCategory, resource: str,
                      key: str) -> str:
    return _pick(POSITIVE_TEMPLATES[category], key).format(res=resource)


def negative_sentence(category: VerbCategory, resource: str,
                      key: str) -> str:
    return _pick(NEGATIVE_TEMPLATES[category], key).format(res=resource)


def render_app_policy(plan) -> str:
    """The full policy document of one app plan."""
    package = plan.package
    parts: list[str] = [
        f"Privacy Policy for {package}.",
        BOILERPLATE[_stable_hash(package) % len(BOILERPLATE)],
        BOILERPLATE[(_stable_hash(package) + 3) % len(BOILERPLATE)],
    ]

    for category, info in plan.covered:
        resource = info_phrase(info, package + info.value)
        parts.append(positive_sentence(category, resource,
                                       package + info.value))

    for info in plan.tricky_covered:
        resource = info_phrase(info, package + "tricky")
        template = _pick(TRICKY_TEMPLATES, package)
        parts.append(template.format(res=resource))

    for denial in plan.denials:
        if denial.sentence:
            parts.append(denial.sentence)
        elif denial.verb:
            parts.append(FN_VERB_TEMPLATE.format(verb=denial.verb,
                                                 res=denial.resource))
        else:
            parts.append(negative_sentence(
                denial.category, denial.resource,
                package + denial.resource,
            ))

    if plan.lib_ids:
        parts.append(LIB_POINTER_TEXT)
    if plan.disclaimer:
        parts.append(DISCLAIMER_TEXT)
    parts.append("If you have questions you may reach us at "
                 "privacy@example.com.")
    return " ".join(parts)


_LIB_POSITIVE_TEMPLATES: dict[VerbCategory, tuple[str, ...]] = {
    VerbCategory.COLLECT: (
        "We may collect your {res}.",
        "We may receive your {res} from the apps that embed our sdk.",
    ),
    VerbCategory.USE: (
        "We may use your {res} to serve relevant advertising.",
        "Your {res} may be processed to measure performance.",
    ),
    VerbCategory.RETAIN: (
        "We will store your {res} for a limited period.",
    ),
    VerbCategory.DISCLOSE: (
        "We will share your {res} with companies we work with.",
        "We may share your {res} with our advertising partners.",
    ),
}


def render_lib_policy(lib_id: str, behaviors) -> str:
    """The policy document of one third-party library."""
    parts: list[str] = [
        f"Privacy Policy of the {lib_id} sdk.",
        "This policy explains our data practices.",
    ]
    for category, resource in behaviors:
        template = _pick(_LIB_POSITIVE_TEMPLATES[category],
                         lib_id + resource + category.value)
        parts.append(template.format(res=resource))
    parts.append("Contact privacy@" + lib_id + ".example.com with "
                 "questions.")
    return " ".join(parts)


__all__ = [
    "INFO_PHRASES",
    "POSITIVE_TEMPLATES",
    "NEGATIVE_TEMPLATES",
    "TRICKY_TEMPLATES",
    "BOILERPLATE",
    "DISCLAIMER_TEXT",
    "info_phrase",
    "positive_sentence",
    "negative_sentence",
    "render_app_policy",
    "render_lib_policy",
]
