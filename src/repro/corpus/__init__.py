"""Synthetic app-store corpus (Section V-A substitute).

The paper evaluates PPChecker on 1,197 Google-Play apps with English
descriptions and privacy policies, plus the policies of 81 third-party
libraries (52 ad, 9 social, 20 development tools).  That corpus is not
redistributable, so this package generates a deterministic synthetic
equivalent: every app gets a manifest, dex bytecode, a description,
and a privacy policy, rendered from per-app :class:`AppPlan`\\ s whose
planted problems are calibrated to the paper's findings (Tables III/IV,
Fig. 13, Section V-F).  Ground-truth labels live on the plans, so
precision/recall can be measured exactly.
"""

from repro.corpus.plans import AppPlan, build_plans
from repro.corpus.appstore import (
    AppStore,
    CorpusSpec,
    SyntheticApp,
    generate_app_store,
)
from repro.corpus.libpolicies import lib_policy_text
from repro.corpus.sentences import generate_labeled_sentences

__all__ = [
    "AppPlan",
    "build_plans",
    "AppStore",
    "CorpusSpec",
    "SyntheticApp",
    "generate_app_store",
    "lib_policy_text",
    "generate_labeled_sentences",
]
