"""App-description generation.

Each description gets category-flavored marketing sentences plus, for
planted permissions, one sentence embedding the AutoCog-indicative
phrase.  Background sentences are curated to avoid every phrase in
:data:`repro.description.autocog.PERMISSION_PHRASES`, so clean apps
never trip the description analysis.
"""

from __future__ import annotations

from repro.corpus.plans import PERMISSION_PLANT_PHRASES

_CATEGORY_BLURBS: dict[str, tuple[str, ...]] = {
    "weather": ("Beautiful forecasts presented simply.",
                "Hourly and ten day outlooks for any place you choose."),
    "maps": ("Offline maps for travelers.",
             "Plan trips and explore new routes with ease."),
    "games": ("An addictive arcade experience.",
              "Compete with players around the world and climb the "
              "leaderboard."),
    "tools": ("A handy toolbox for everyday tasks.",
              "Small, fast, and free."),
    "social": ("Meet new people and keep up with friends.",
               "Share moments that matter."),
    "music": ("Millions of songs at your fingertips.",
              "Create playlists and discover new artists."),
    "news": ("Breaking stories from trusted sources.",
             "Personalized reading built for speed."),
    "shopping": ("Deals updated daily.",
                 "Compare prices and save on every order."),
    "travel": ("Book flights and hotels in seconds.",
               "Travel smarter with curated guides."),
    "finance": ("Track budgets and spending easily.",
                "Bank-level security for peace of mind."),
    "health": ("Reach your fitness goals.",
               "Track workouts, sleep, and habits."),
    "photography": ("Powerful editing made simple.",
                    "Stunning filters and effects."),
    "productivity": ("Get more done every day.",
                     "Organize tasks, notes, and projects."),
    "education": ("Learn anything, anywhere.",
                  "Bite-size lessons from expert teachers."),
    "sports": ("Live scores and highlights.",
               "Follow every match of your favorite team."),
    "books": ("A library in your pocket.",
              "Thousands of classics, free."),
    "lifestyle": ("Ideas for better living.",
                  "Daily inspiration delivered fresh."),
    "business": ("Work tools for modern teams.",
                 "Collaborate securely from anywhere."),
    "communication": ("Fast, reliable messaging.",
                      "Crystal clear calls over any connection."),
    "entertainment": ("Endless entertainment on demand.",
                      "Watch, laugh, and share."),
}

#: one planted sentence per permission, embedding the model phrase.
_PERMISSION_SENTENCES: dict[str, str] = {
    "android.permission.ACCESS_FINE_LOCATION":
        "The app uses gps for accurate positioning.",
    "android.permission.ACCESS_COARSE_LOCATION":
        "Get the local weather at a glance.",
    "android.permission.READ_CONTACTS":
        "This app synchronizes all birthdays with your contacts list.",
    "android.permission.GET_ACCOUNTS":
        "You can sign in with your google account to sync progress.",
    "android.permission.CAMERA":
        "Take photos and apply beautiful effects.",
    "android.permission.READ_CALENDAR":
        "Keeps your calendar organized with smart reminders.",
    "android.permission.WRITE_CONTACTS":
        "Quickly save to contacts any number you receive.",
}


def render_description(plan) -> str:
    """The Play-store description of one app plan."""
    blurbs = _CATEGORY_BLURBS.get(
        plan.app_category, _CATEGORY_BLURBS["tools"]
    )
    parts = [
        f"{plan.package.rsplit('.', 1)[-1]} is a {plan.app_category} "
        "app you will love.",
        blurbs[plan.index % len(blurbs)],
    ]
    for permission in plan.desc_permissions:
        sentence = _PERMISSION_SENTENCES.get(permission)
        if sentence is None:
            phrase = PERMISSION_PLANT_PHRASES.get(permission, "")
            sentence = f"This app makes use of {phrase}."
        parts.append(sentence)
    parts.append(blurbs[(plan.index + 1) % len(blurbs)])
    return " ".join(parts)


__all__ = ["render_description"]
