"""Labelled policy-sentence corpus for pattern bootstrapping (Fig. 12).

The paper trains its bootstrapping on real-policy sentences and scores
patterns against a manually-verified set of 250 positive + 250
negative sentences drawn from 100 policies.  We generate an equivalent
labelled corpus:

- *positive* sentences assert collection/usage/retention/disclosure
  through ~330 distinct syntactic chains (direct verbs, "allowed to",
  "able to", and other control constructions) with a zipf-like
  frequency profile, so bootstrapped patterns have a long tail and the
  top-n sweep of Fig. 12 has a knee;
- a slice of validation positives uses constructions absent from
  training (the paper's irreducible 12% false-negative floor);
- *negative* sentences describe user actions, service marketing, and
  boilerplate; a few are crafted traps that lexically match learned
  patterns (the paper's 2.8% false-positive rate).
"""

from __future__ import annotations

import random

from repro.policy.bootstrap import LabeledSentence
from repro.policy.verbs import (
    COLLECT_VERBS,
    DISCLOSE_VERBS,
    RETAIN_VERBS,
    USE_VERBS,
    VerbCategory,
)

_CONTROLS = ("allow", "able", "permit", "need", "continue", "choose",
             "decide", "help", "authorize", "consent")

_RESOURCES = (
    "location", "location information", "device identifiers",
    "ip address", "cookies", "contacts", "account information",
    "calendar", "phone number", "photos", "audio recordings",
    "installed applications", "email address", "personal information",
    "name", "browsing history", "usage data",
)

_SUBJECTS = ("we", "the app", "our service", "the company")

#: sentence shapes per chain; {subj}/{ctrl}/{verb}/{res} placeholders.
_DIRECT_SHAPES = (
    "{subj} may {verb} your {res}.",
    "{subj} will {verb} your {res} when you use the app.",
    "your {res} will be {verbed} by {subj}.",
)
_CONTROL_SHAPES = {
    "allow": "{subj} are allowed to {verb} your {res}.",
    "able": "{subj} are able to {verb} your {res}.",
    "permit": "{subj} are permitted to {verb} your {res}.",
    "need": "{subj} need to {verb} your {res} to operate.",
    "continue": "{subj} continue to {verb} your {res}.",
    "choose": "{subj} may choose to {verb} your {res}.",
    "decide": "{subj} may decide to {verb} your {res}.",
    "help": "{subj} help to {verb} your {res} responsibly.",
    "authorize": "{subj} are authorized to {verb} your {res}.",
    "consent": "{subj} consent to {verb} your {res}.",
}

_NEGATIVE_SENTENCES = (
    "you can manage your preferences in the settings menu.",
    "you may visit our website for more details.",
    "users are responsible for keeping their passwords safe.",
    "this policy applies to all versions of the app.",
    "the terms below govern your relationship with us.",
    "you should review this page periodically.",
    "our team works hard on a great experience.",
    "the game features dozens of challenging levels.",
    "you agree to the terms by installing the app.",
    "children under thirteen may not register.",
    "our support staff answers questions quickly.",
    "the service comes free of charge.",
    "updates arrive on a monthly basis.",
    "you may remove the app at any time.",
    "the terms deserve a careful look.",
    "our offices sit in several countries.",
    "the policy changed earlier this year.",
    "security remains a priority for our engineers.",
    "the app requires an internet connection.",
    "you can ask for a copy of this document.",
)

#: negatives that lexically match learnable chains (FP traps); the
#: first few hit frequent chains, the last ones hit rare chains so the
#: false-positive rate creeps up as n grows (Fig. 12's upper curve).
_TRAP_SENTENCES = (
    "we collect feedback to shape the roadmap.",
    "we use modern technology to build the app.",
    "we share our passion for great design.",
    "we keep our promises to the community.",
    "we provide excellent entertainment and fun games.",
    "we are authorized to keep our standards high.",
    "we consent to share the stage with our community.",
)

#: constructions never seen in training (the FN floor of Fig. 12).
_HARD_POSITIVE_SHAPES = (
    "we will never display your {res} to strangers.",
    "your {res} is among the things we may come to know.",
    "{res} of yours might end up with our affiliates.",
    "we have an interest in your {res} and act on it.",
    "rest assured that your {res} helps our mission.",
)


def _category_verbs() -> list[tuple[str, VerbCategory]]:
    pairs: list[tuple[str, VerbCategory]] = []
    for verbs, category in (
        (COLLECT_VERBS, VerbCategory.COLLECT),
        (USE_VERBS, VerbCategory.USE),
        (RETAIN_VERBS, VerbCategory.RETAIN),
        (DISCLOSE_VERBS, VerbCategory.DISCLOSE),
    ):
        pairs.extend((verb, category) for verb in sorted(verbs))
    return pairs


def _past_participle(verb: str) -> str:
    irregular = {"keep": "kept", "hold": "held", "give": "given",
                 "take": "taken", "get": "gotten", "send": "sent",
                 "sell": "sold", "read": "read", "know": "known",
                 "see": "seen", "tell": "told", "pass": "passed"}
    if verb in irregular:
        return irregular[verb]
    if verb.endswith("e"):
        return verb + "d"
    if verb.endswith("y") and verb[-2] not in "aeiou":
        return verb[:-1] + "ied"
    if verb in ("log", "stop", "permit", "transmit", "submit"):
        return verb + verb[-1] + "ed"
    return verb + "ed"


def _chain_inventory() -> list[tuple[tuple[str, ...], VerbCategory, int]]:
    """(chain, category, training frequency), zipf-like.

    The frequency profile keeps chains up to roughly rank 230 at
    frequency >= 2 (the paper's chosen n), with a long frequency-1
    tail beyond, so the Fig. 12 sweep has its knee near n = 230.
    """
    chains: list[tuple[tuple[str, ...], VerbCategory, int]] = []
    rank = 0
    for verb, category in _category_verbs():
        rank += 1
        chains.append(((verb,), category, max(2, 60 // rank)))
    for ctrl_idx, ctrl in enumerate(_CONTROLS):
        for verb_idx, (verb, category) in enumerate(_category_verbs()):
            # thin the grid deterministically to ~280 two-chains
            if (verb_idx + ctrl_idx) % 2 == 1:
                continue
            rank += 1
            chains.append(((ctrl, verb), category,
                           max(1, 460 // rank) if rank <= 230 else 1))
    return chains


def _render(chain: tuple[str, ...], resource: str, subject: str,
            shape_idx: int) -> str:
    if len(chain) == 1:
        verb = chain[0]
        shape = _DIRECT_SHAPES[shape_idx % len(_DIRECT_SHAPES)]
        return shape.format(subj=subject, verb=verb,
                            verbed=_past_participle(verb), res=resource)
    ctrl, verb = chain
    return _CONTROL_SHAPES[ctrl].format(subj=subject, verb=verb,
                                        res=resource)


def generate_labeled_sentences(
    seed: int = 7,
    n_validation_positive: int = 250,
    n_validation_negative: int = 250,
) -> tuple[list[LabeledSentence], list[LabeledSentence]]:
    """(training corpus, validation corpus), both labelled."""
    rng = random.Random(seed)
    chains = _chain_inventory()

    training: list[LabeledSentence] = []
    for chain, category, freq in chains:
        for k in range(freq):
            training.append(LabeledSentence(
                text=_render(
                    chain,
                    _RESOURCES[(k * 7 + len(chain)) % len(_RESOURCES)],
                    _SUBJECTS[k % len(_SUBJECTS)],
                    k,
                ),
                positive=True,
                category=category,
            ))
    for k in range(len(training) // 3):
        training.append(LabeledSentence(
            text=_NEGATIVE_SENTENCES[k % len(_NEGATIVE_SENTENCES)],
            positive=False,
        ))
    rng.shuffle(training)

    validation: list[LabeledSentence] = []
    # weighted positive sample + a ~12% hard floor (the paper's false-
    # negative rate at the chosen n); frequency-1 tail chains receive
    # zero sampling weight so top-230 patterns cover the rest
    n_hard = max(1, n_validation_positive * 12 // 100)
    weights = [freq if freq >= 2 else 0
               for _chain, _cat, freq in chains]
    for k in range(n_validation_positive - n_hard):
        chain, category, _freq = rng.choices(chains, weights=weights)[0]
        validation.append(LabeledSentence(
            text=_render(chain, rng.choice(_RESOURCES),
                         rng.choice(_SUBJECTS), rng.randrange(3)),
            positive=True,
            category=category,
        ))
    for k in range(n_hard):
        shape = _HARD_POSITIVE_SHAPES[k % len(_HARD_POSITIVE_SHAPES)]
        validation.append(LabeledSentence(
            text=shape.format(res=rng.choice(_RESOURCES)),
            positive=True,
            category=VerbCategory.COLLECT,
        ))
    n_traps = max(1, n_validation_negative * 3 // 100)
    for k in range(n_validation_negative - n_traps):
        validation.append(LabeledSentence(
            text=_NEGATIVE_SENTENCES[k % len(_NEGATIVE_SENTENCES)],
            positive=False,
        ))
    for k in range(n_traps):
        validation.append(LabeledSentence(
            text=_TRAP_SENTENCES[k % len(_TRAP_SENTENCES)],
            positive=False,
        ))
    rng.shuffle(validation)
    return training, validation


__all__ = ["generate_labeled_sentences"]
