"""HTML rendering of generated policies.

Real privacy policies arrive as web pages; rendering the corpus
policies as HTML exercises the Step-1 extraction path (tag stripping,
entity decoding, list handling) across the whole study.  The renderer
is sentence-preserving: ``html_to_text`` recovers exactly the prose
that the plain-text generator produced, so detector results are
unchanged.
"""

from __future__ import annotations

from repro.nlp.sentences import split_sentences

_TEMPLATES = (
    # a minimal page
    "<html><head><title>{title}</title>"
    "<style>body {{ font: 14px sans-serif }}</style></head>"
    "<body><h1>{title}</h1>{body}"
    "<script>var analytics = 'ignored';</script>"
    "</body></html>",
    # a page with section headers
    "<html><head><title>{title}</title></head><body>"
    "<h1>{title}</h1><h2>Information we handle</h2>{body}"
    "<!-- generated policy -->"
    "</body></html>",
)


def policy_to_html(policy_text: str, title: str = "Privacy Policy",
                   variant: int = 0) -> str:
    """Wrap policy prose into an HTML page, one ``<p>`` per sentence."""
    sentences = split_sentences(policy_text)
    body = "".join(f"<p>{sentence}</p>" for sentence in sentences)
    template = _TEMPLATES[variant % len(_TEMPLATES)]
    return template.format(title=title, body=body)


__all__ = ["policy_to_html"]
