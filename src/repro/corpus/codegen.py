"""APK bytecode generation from an app plan.

Builds a dex whose observable behaviour matches the plan:

- ``MainActivity.onCreate`` invokes one sensitive API (or performs a
  content-provider query) per planted collection;
- planted retentions route the result register through a helper method
  into a log/file sink (an interprocedural taint path);
- a dead class performs unreachable collection (exercising the
  reachability analysis);
- one stub class per embedded third-party lib (exercising lib
  detection and app-vs-lib attribution);
- every fourth app launches a service through an explicit intent and
  registers a click listener (exercising the IccTA and EdgeMiner
  substitutes);
- packed apps go through :func:`repro.android.packer.pack`.
"""

from __future__ import annotations

from repro.android.apk import Apk
from repro.android.dex import DexClass, DexFile, Instruction, Method
from repro.android.libs import LIB_REGISTRY
from repro.android.manifest import AndroidManifest, Component
from repro.android.packer import pack
from repro.corpus.plans import AppPlan
from repro.semantics.resources import InfoType

_QUERY_API = ("android.content.ContentResolver->query(uri,projection,"
              "selection,selectionArgs,sortOrder)")
_URI_PARSE = "android.net.Uri->parse(uriString)"
_LOG_SINK = "android.util.Log->i(tag,msg)"
_FILE_SINK = "java.io.FileOutputStream->write(bytes)"

#: info -> (sensitive API | None, content URI | None, permission)
INFO_SOURCES: dict[InfoType, tuple[str | None, str | None, str]] = {
    InfoType.LOCATION: (
        "android.location.Location->getLatitude()", None,
        "android.permission.ACCESS_FINE_LOCATION",
    ),
    InfoType.DEVICE_ID: (
        "android.telephony.TelephonyManager->getDeviceId()", None,
        "android.permission.READ_PHONE_STATE",
    ),
    InfoType.PHONE_NUMBER: (
        "android.telephony.TelephonyManager->getLine1Number()", None,
        "android.permission.READ_PHONE_STATE",
    ),
    InfoType.ACCOUNT: (
        "android.accounts.AccountManager->getAccounts()", None,
        "android.permission.GET_ACCOUNTS",
    ),
    InfoType.APP_LIST: (
        "android.content.pm.PackageManager->getInstalledPackages(flags)",
        None, "",
    ),
    InfoType.CAMERA: (
        "android.hardware.Camera->open()", None,
        "android.permission.CAMERA",
    ),
    InfoType.AUDIO: (
        "android.media.AudioRecord->read(audioData,offset,size)", None,
        "android.permission.RECORD_AUDIO",
    ),
    InfoType.IP_ADDRESS: (
        "android.net.wifi.WifiInfo->getIpAddress()", None, "",
    ),
    InfoType.COOKIE: (
        "android.webkit.CookieManager->getCookie(url)", None, "",
    ),
    InfoType.CONTACT: (
        None, "content://contacts", "android.permission.READ_CONTACTS",
    ),
    InfoType.CALENDAR: (
        None, "content://com.android.calendar",
        "android.permission.READ_CALENDAR",
    ),
    InfoType.SMS: (None, "content://sms", "android.permission.READ_SMS"),
    InfoType.BROWSER_HISTORY: (
        None, "content://browser/bookmarks",
        "com.android.browser.permission.READ_HISTORY_BOOKMARKS",
    ),
    InfoType.EMAIL_ADDRESS: (
        "android.accounts.AccountManager->getAccounts()", None,
        "android.permission.GET_ACCOUNTS",
    ),
    InfoType.PERSON_NAME: (
        None, "content://contacts", "android.permission.READ_CONTACTS",
    ),
    InfoType.BIRTHDAY: (
        None, "content://contacts", "android.permission.READ_CONTACTS",
    ),
}


def _collect_instructions(info: InfoType, reg_base: int) -> tuple[
    list[Instruction], str
]:
    """Instructions producing *info* into a result register."""
    api, uri, _perm = INFO_SOURCES[info]
    v0 = f"v{reg_base}"
    v1 = f"v{reg_base + 1}"
    v2 = f"v{reg_base + 2}"
    if api is not None:
        return [Instruction(op="invoke", dest=v0, target=api)], v0
    return [
        Instruction(op="const-string", dest=v0, literal=uri or ""),
        Instruction(op="invoke", dest=v1, target=_URI_PARSE, args=(v0,)),
        Instruction(op="invoke", dest=v2, target=_QUERY_API, args=(v1,)),
    ], v2


def build_apk(plan: AppPlan) -> Apk:
    """The APK for one app plan."""
    package = plan.package
    dex = DexFile()
    activity_name = f"{package}.MainActivity"
    activity = DexClass(name=activity_name,
                        superclass="android.app.Activity")
    main = Method(class_name=activity_name, name="onCreate",
                  params=("savedInstanceState",))
    permissions = {"android.permission.INTERNET",
                   "android.permission.ACCESS_NETWORK_STATE"}

    reg = 0
    retained = set(plan.retains)
    helper_name = f"{package}.Helper"
    needs_helper = bool(retained)
    collects = list(dict.fromkeys(plan.collects))

    # every sixth app performs its first collection inside a posted
    # Runnable -- reachable only through the EdgeMiner callback edge
    runnable_info = None
    if plan.index % 6 == 3 and collects:
        runnable_info = collects.pop(0)

    for info in collects:
        instructions, result_reg = _collect_instructions(info, reg)
        main.instructions.extend(instructions)
        reg += 4
        permission = INFO_SOURCES[info][2]
        if permission:
            permissions.add(permission)
        if info in retained:
            main.instructions.append(Instruction(
                op="invoke", target=f"{helper_name}->save(value)",
                args=(result_reg,),
            ))

    if runnable_info is not None:
        worker_name = f"{package}.Worker"
        main.instructions.extend([
            Instruction(op="new-instance", dest=f"v{reg}",
                        literal=worker_name),
            Instruction(op="invoke",
                        target="android.os.Handler->post(runnable)",
                        args=(f"v{reg}",)),
        ])
        reg += 1
        worker = DexClass(name=worker_name,
                          interfaces=("java.lang.Runnable",))
        run = Method(class_name=worker_name, name="run")
        instructions, result_reg = _collect_instructions(runnable_info, 0)
        run.instructions = list(instructions)
        permission = INFO_SOURCES[runnable_info][2]
        if permission:
            permissions.add(permission)
        if runnable_info in retained:
            run.instructions.append(Instruction(
                op="invoke", target=f"{helper_name}->save(value)",
                args=(result_reg,),
            ))
        run.instructions.append(Instruction(op="return"))
        worker.add_method(run)
        dex.add_class(worker)

    # exercise implicit callbacks and ICC in a quarter of the apps
    if plan.index % 4 == 0:
        listener_name = f"{package}.ClickListener"
        main.instructions.extend([
            Instruction(op="new-instance", dest=f"v{reg}",
                        literal=listener_name),
            Instruction(op="invoke",
                        target="android.view.View->setOnClickListener("
                               "listener)",
                        args=(f"v{reg}",)),
        ])
        reg += 1
        listener = DexClass(name=listener_name,
                            interfaces=("android.view.View$OnClickListener",))
        on_click = Method(class_name=listener_name, name="onClick",
                          params=("view",))
        on_click.instructions = [Instruction(op="return")]
        listener.add_method(on_click)
        dex.add_class(listener)

        service_name = f"{package}.SyncService"
        main.instructions.extend([
            Instruction(op="invoke", dest=f"v{reg}",
                        target="android.content.Intent-><init>(context,cls)",
                        literal=service_name),
            Instruction(op="invoke",
                        target="android.app.Activity->startService(intent)",
                        args=(f"v{reg}",)),
        ])
        service = DexClass(name=service_name,
                           superclass="android.app.Service")
        on_start = Method(class_name=service_name, name="onStartCommand",
                          params=("intent", "flags", "startId"))
        on_start.instructions = [Instruction(op="return")]
        service.add_method(on_start)
        dex.add_class(service)

    main.instructions.append(Instruction(op="return"))
    activity.add_method(main)
    dex.add_class(activity)

    if needs_helper:
        helper = DexClass(name=helper_name)
        save = Method(class_name=helper_name, name="save",
                      params=("value",))
        sink = _LOG_SINK if plan.index % 2 == 0 else _FILE_SINK
        save.instructions = [
            Instruction(op="const-string", dest="v0", literal="TAG"),
            Instruction(op="invoke", target=sink,
                        args=("v0", "value") if sink == _LOG_SINK
                        else ("value",)),
            Instruction(op="return"),
        ]
        helper.add_method(save)
        dex.add_class(helper)

    # unreachable sensitive code
    if plan.dead_collects:
        dead = DexClass(name=f"{package}.Unused")
        method = Method(class_name=f"{package}.Unused", name="legacy")
        base = 0
        for info in plan.dead_collects:
            instructions, _reg = _collect_instructions(info, base)
            method.instructions.extend(instructions)
            base += 4
            permission = INFO_SOURCES[info][2]
            if permission:
                permissions.add(permission)
        dead.add_method(method)
        dex.add_class(dead)

    # third-party lib stubs (lib behaviour stays lib-attributed)
    for lib_id in plan.lib_ids:
        spec = LIB_REGISTRY[lib_id]
        lib_class = DexClass(name=f"{spec.prefix}.Sdk")
        init = Method(class_name=f"{spec.prefix}.Sdk", name="init")
        init.instructions = [
            Instruction(op="invoke", dest="v0",
                        target="android.telephony.TelephonyManager->"
                               "getDeviceId()"),
            Instruction(op="return"),
        ]
        lib_class.add_method(init)
        dex.add_class(lib_class)

    # permissions the description analysis needs the manifest to hold
    permissions.update(plan.desc_permissions)

    manifest = AndroidManifest(package=package, permissions=permissions,
                               main_activity=activity_name)
    manifest.add_component(Component(name=activity_name, kind="activity"))
    if plan.index % 4 == 0:
        manifest.add_component(Component(name=f"{package}.SyncService",
                                         kind="service"))

    apk = Apk(manifest=manifest, dex=dex)
    if plan.packed:
        pack(apk)
    return apk


__all__ = ["INFO_SOURCES", "build_apk"]
