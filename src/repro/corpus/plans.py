"""Per-app plans: what each synthetic app does, says, and hides.

``build_plans()`` lays out 1,197 app plans whose planted problems are
calibrated to the paper's findings:

- 64 apps incomplete via description (Table III's permission counts),
- 180 apps truly incomplete via code carrying 234 missed-information
  records, 32 of them retention records (Fig. 13's distribution),
  plus 15 false-positive apps whose policies cover the information in
  a sentence the extractor mis-handles,
- 4 truly incorrect apps (2 detectable via description + code, 2 via
  retention) plus 2 context false positives,
- 75 detectable truly inconsistent apps (41 collect/use/retain + 39
  disclose, 5 in both rows), 7 false negatives (unmatched verbs), 9
  ESA false positives, 20 disclaimer-suppressed apps (Table IV),
- 19 apps both inconsistent and code-incomplete so the distinct
  problem-app count lands at 282 of 1,197 (Section V-F),
- 879 apps embedding at least one third-party lib (Section V-A).

Everything is deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.android.libs import libs_by_category
from repro.policy.verbs import VerbCategory
from repro.semantics.resources import InfoType

N_APPS = 1197
DEFAULT_SEED = 2016

#: Play-store categories used for package names and description flavor.
APP_CATEGORIES = (
    "weather", "maps", "games", "tools", "social", "music", "news",
    "shopping", "travel", "finance", "health", "photography",
    "productivity", "education", "sports", "books", "lifestyle",
    "business", "communication", "entertainment",
)

# Table III: permission -> number of description-incomplete apps.
TABLE3_PERMISSIONS: tuple[tuple[str, int], ...] = (
    ("android.permission.ACCESS_FINE_LOCATION", 19),
    ("android.permission.ACCESS_COARSE_LOCATION", 14),
    ("android.permission.READ_CONTACTS", 12),
    ("android.permission.GET_ACCOUNTS", 11),
    ("android.permission.CAMERA", 6),
    ("android.permission.READ_CALENDAR", 2),
    ("android.permission.WRITE_CONTACTS", 1),
)

#: unique description phrase that implies each permission (AutoCog model).
PERMISSION_PLANT_PHRASES: dict[str, str] = {
    "android.permission.ACCESS_FINE_LOCATION": "gps",
    "android.permission.ACCESS_COARSE_LOCATION": "local weather",
    "android.permission.READ_CONTACTS": "your contacts",
    "android.permission.GET_ACCOUNTS":
        "sign in with your google account",
    "android.permission.CAMERA": "take photos",
    "android.permission.READ_CALENDAR": "your calendar",
    "android.permission.WRITE_CONTACTS": "save to contacts",
}

# Fig. 13: (info, total missed records, retained records among them).
FIG13_DISTRIBUTION: tuple[tuple[InfoType, int, int], ...] = (
    (InfoType.LOCATION, 62, 10),
    (InfoType.DEVICE_ID, 40, 6),
    (InfoType.CONTACT, 30, 8),
    (InfoType.ACCOUNT, 25, 0),
    (InfoType.PHONE_NUMBER, 20, 4),
    (InfoType.APP_LIST, 18, 4),
    (InfoType.CAMERA, 12, 0),
    (InfoType.CALENDAR, 10, 0),
    (InfoType.SMS, 8, 0),
    (InfoType.AUDIO, 5, 0),
    (InfoType.IP_ADDRESS, 4, 0),
)


@dataclass(frozen=True)
class DenialPlan:
    """A negative policy statement to render."""

    category: VerbCategory
    resource: str
    verb: str = ""            # override (e.g. the FN verbs)
    sentence: str = ""        # fully custom sentence, overrides template


@dataclass(frozen=True)
class InconsistencyPlan:
    """A planted app-vs-lib conflict (or FP/FN variant)."""

    lib_id: str
    category: VerbCategory
    resource: str             # app-side denied resource phrase
    truly_inconsistent: bool  # ground truth
    fn_verb: str = ""         # app sentence uses this unmatchable verb


@dataclass
class AppPlan:
    """The full specification of one synthetic app."""

    index: int
    package: str
    app_category: str
    # code behaviour
    collects: tuple[InfoType, ...] = ()
    retains: tuple[InfoType, ...] = ()
    dead_collects: tuple[InfoType, ...] = ()
    lib_ids: tuple[str, ...] = ()
    packed: bool = False
    # policy contents
    covered: tuple[tuple[VerbCategory, InfoType], ...] = ()
    tricky_covered: tuple[InfoType, ...] = ()
    denials: tuple[DenialPlan, ...] = ()
    disclaimer: bool = False
    # description
    desc_permissions: tuple[str, ...] = ()
    # ground truth
    gt_incomplete_desc: tuple[tuple[InfoType, str], ...] = ()
    gt_incomplete_code: tuple[tuple[InfoType, bool], ...] = ()
    gt_incorrect: bool = False
    inconsistencies: tuple[InconsistencyPlan, ...] = ()

    # -- derived ground-truth views --------------------------------------

    @property
    def gt_is_incomplete(self) -> bool:
        return bool(self.gt_incomplete_desc or self.gt_incomplete_code)

    @property
    def gt_inconsistent_cur(self) -> bool:
        return any(
            p.truly_inconsistent and p.category is not VerbCategory.DISCLOSE
            for p in self.inconsistencies
        )

    @property
    def gt_inconsistent_d(self) -> bool:
        return any(
            p.truly_inconsistent and p.category is VerbCategory.DISCLOSE
            for p in self.inconsistencies
        )

    @property
    def gt_is_inconsistent(self) -> bool:
        return self.gt_inconsistent_cur or self.gt_inconsistent_d

    @property
    def gt_has_problem(self) -> bool:
        return (
            self.gt_is_incomplete or self.gt_incorrect
            or self.gt_is_inconsistent
        )


# ---------------------------------------------------------------------------
# index layout
# ---------------------------------------------------------------------------

INC_DESC_ONLY = range(0, 42)          # 42 description-only incomplete
INC_DESC_CODE = range(42, 64)         # 22 description + code incomplete
INC_CODE_ONLY = range(64, 222)        # 158 code-only incomplete
INC_CODE_FP = range(222, 237)         # 15 extraction false positives
INCORRECT_TP = range(237, 241)        # 4 truly incorrect
INCORRECT_FP = range(241, 243)        # 2 context false positives
INCONSISTENT_NEW = range(243, 299)    # 56 inconsistent (detected, true)
INCONSISTENT_FN = range(299, 306)     # 7 inconsistent the checker misses
INCONSISTENT_FP = range(306, 315)     # 9 spurious matches
DISCLAIMER_APPS = range(315, 335)     # 20 conflicts behind disclaimers
BACKGROUND = range(335, N_APPS)       # clean apps
#: the first 19 code-incomplete apps are also inconsistent (overlap
#: that lands the distinct problem-app count at 282).
INCONSISTENT_OVERLAP = range(64, 83)

TOTAL_APPS_WITH_LIBS = 879


def _package_for(index: int) -> tuple[str, str]:
    category = APP_CATEGORIES[index % len(APP_CATEGORIES)]
    return f"com.example.{category}.app{index:04d}", category


def _fig13_records() -> list[tuple[InfoType, bool]]:
    """The 234 (info, retained) records of Fig. 13."""
    records: list[tuple[InfoType, bool]] = []
    for info, total, retained in FIG13_DISTRIBUTION:
        records.extend((info, True) for _ in range(retained))
        records.extend((info, False) for _ in range(total - retained))
    return records


def _table3_assignments() -> list[tuple[int, str]]:
    """(app index within 0..63, permission) pairs; 65 records, 64 apps."""
    pairs: list[tuple[int, str]] = []
    cursor = 0
    for permission, count in TABLE3_PERMISSIONS:
        if permission == "android.permission.WRITE_CONTACTS":
            # the single WRITE_CONTACTS record shares an app with
            # READ_CONTACTS (the paper counts permissions, not apps)
            pairs.append((33, permission))
            continue
        for _ in range(count):
            pairs.append((cursor, permission))
            cursor += 1
    return pairs


def _inconsistency_specs() -> list[InconsistencyPlan]:
    """The 75 detectable true conflicts, ordered for assignment."""
    ad = [s.lib_id for s in libs_by_category("ad")]
    social = [s.lib_id for s in libs_by_category("social")]
    specs: list[InconsistencyPlan] = []
    # 36 collect/use/retain-only conflicts
    for k in range(15):
        specs.append(InconsistencyPlan(
            lib_id=ad[(2 * k) % len(ad)], category=VerbCategory.COLLECT,
            resource="location", truly_inconsistent=True,
        ))
    for k in range(13):
        specs.append(InconsistencyPlan(
            lib_id=ad[(2 * k + 1) % len(ad)],
            category=VerbCategory.COLLECT,
            resource="device identifiers", truly_inconsistent=True,
        ))
    for k in range(8):
        specs.append(InconsistencyPlan(
            lib_id=social[k % len(social)], category=VerbCategory.COLLECT,
            resource="contacts", truly_inconsistent=True,
        ))
    # 34 disclose-only conflicts
    for k in range(17):
        specs.append(InconsistencyPlan(
            lib_id=ad[(2 * k + 1) % len(ad)],
            category=VerbCategory.DISCLOSE,
            resource="device identifiers", truly_inconsistent=True,
        ))
    for k in range(10):
        specs.append(InconsistencyPlan(
            lib_id=ad[(3 * k) % len(ad)], category=VerbCategory.DISCLOSE,
            resource="personal information", truly_inconsistent=True,
        ))
    for k in range(7):
        specs.append(InconsistencyPlan(
            lib_id=ad[(5 * k) % len(ad)], category=VerbCategory.DISCLOSE,
            resource="location", truly_inconsistent=True,
        ))
    return specs


def _both_row_specs() -> list[tuple[InconsistencyPlan, InconsistencyPlan]]:
    """5 apps appearing in both Table IV rows (odd-index libs both
    collect and disclose device identifiers)."""
    ad = [s.lib_id for s in libs_by_category("ad")]
    out = []
    for k in range(5):
        lib = ad[(14 * k + 1) % len(ad)]
        out.append((
            InconsistencyPlan(lib, VerbCategory.COLLECT,
                              "device identifiers", True),
            InconsistencyPlan(lib, VerbCategory.DISCLOSE,
                              "device identifiers", True),
        ))
    return out


def _apply_inconsistency(
    plan: AppPlan, spec_group: tuple[InconsistencyPlan, ...]
) -> None:
    plan.inconsistencies = plan.inconsistencies + spec_group
    for spec in spec_group:
        plan.lib_ids = tuple(dict.fromkeys(plan.lib_ids + (spec.lib_id,)))
        plan.denials = plan.denials + (
            DenialPlan(spec.category, spec.resource),
        )


_FN_SPECS: tuple[tuple[str, VerbCategory, str, str], ...] = (
    # (lib, category, resource, fn verb): the app sentence uses a verb
    # outside the extracted patterns -> PPChecker misses the conflict.
    ("admob", VerbCategory.COLLECT, "location", "view"),
    ("flurry", VerbCategory.COLLECT, "device identifiers", "view"),
    ("inmobi", VerbCategory.COLLECT, "location", "harvest"),
    ("mopub", VerbCategory.COLLECT, "device identifiers", "harvest"),
    ("admob", VerbCategory.DISCLOSE, "device identifiers", "display"),
    ("flurry", VerbCategory.DISCLOSE, "personal information", "display"),
    ("chartboost", VerbCategory.DISCLOSE, "device identifiers", "display"),
)

#: FP apps: a generic "that information" denial that ESA wrongly
#: matches against a lib's "personal information" statement.
_FP_SPECS: tuple[tuple[str, VerbCategory], ...] = (
    ("admob", VerbCategory.USE),
    ("flurry", VerbCategory.USE),
    ("inmobi", VerbCategory.USE),
    ("mopub", VerbCategory.USE),
    ("chartboost", VerbCategory.USE),
    ("admob", VerbCategory.DISCLOSE),
    ("flurry", VerbCategory.DISCLOSE),
    ("inmobi", VerbCategory.DISCLOSE),
    ("vungle", VerbCategory.DISCLOSE),
)


def _background_libs(rng: random.Random, index: int) -> tuple[str, ...]:
    """Deterministic lib assignment for non-inconsistency apps."""
    ad = [s.lib_id for s in libs_by_category("ad")]
    devtools = [s.lib_id for s in libs_by_category("devtool")]
    picks: list[str] = []
    if rng.random() < 0.8:
        picks.append(ad[index % len(ad)])
    if rng.random() < 0.5:
        picks.append(devtools[index % len(devtools)])
    return tuple(dict.fromkeys(picks))


#: every planted problem group lives below this index; plans at or
#: above it are background apps derivable from (seed, index) alone.
PLANT_STOP = 335


def build_plans(seed: int = DEFAULT_SEED,
                n_apps: int = N_APPS) -> list[AppPlan]:
    """Build all app plans, deterministically.

    With ``n_apps < 1197`` the corpus is a prefix of the full store:
    planted groups whose index range falls beyond ``n_apps`` are
    simply truncated (handy for fast tests).

    This is the sequential reference implementation; the lazy
    per-index path (:class:`repro.corpus.appstore.CorpusSpec`) is
    pinned against it in the test suite and must produce equal plans.
    """
    rng = random.Random(seed)
    plans = _planted_prefix(rng, n_apps)
    for index in range(len(plans), n_apps):
        package, category = _package_for(index)
        plans.append(AppPlan(index=index, package=package,
                             app_category=category))
    # coverage / background rolls, then lib fill -- same draw order
    # as the historical single-pass implementation
    for plan in plans:
        roll = rng.random() if plan.index in BACKGROUND else None
        _finalize_plan(plan, roll)
    _assign_background_libs(plans, rng)
    return plans


def _planted_prefix(rng: random.Random,
                    n_apps: int) -> list[AppPlan]:
    """Plans ``0..min(n_apps, PLANT_STOP)`` with every planted
    problem group applied (coverage/libs-fill still pending).

    Consumes exactly the Fig. 13 record shuffle from *rng* -- the
    only randomness the plant phase uses -- so a caller can continue
    drawing from *rng* for the background-roll and lib-fill phases.
    """
    plans: list[AppPlan] = []
    for index in range(min(n_apps, PLANT_STOP)):
        package, category = _package_for(index)
        plans.append(AppPlan(index=index, package=package,
                             app_category=category))

    def clip(indices) -> list[int]:
        return [idx for idx in indices if idx < n_apps]

    # --- incomplete via description (Table III) --------------------------
    for app_idx, permission in _table3_assignments():
        if app_idx >= n_apps:
            continue
        plan = plans[app_idx]
        infos = _permission_infos(permission)
        plan.desc_permissions = plan.desc_permissions + (permission,)
        plan.gt_incomplete_desc = plan.gt_incomplete_desc + tuple(
            (info, permission) for info in infos
        )

    # --- incomplete via code (Fig. 13) ------------------------------------
    records = _fig13_records()
    rng.shuffle(records)
    code_apps = clip(INC_DESC_CODE) + clip(INC_CODE_ONLY)  # 180 apps
    per_app: dict[int, list[tuple[InfoType, bool]]] = {
        idx: [] for idx in code_apps
    }
    cursor = 0
    for idx in code_apps:  # one record each
        per_app[idx].append(records[cursor])
        cursor += 1
    extras = code_apps[: max(0, min(len(records) - len(code_apps), 54))]
    for idx in extras:  # 54 second records
        # avoid duplicating the same info on one app
        record = records[cursor]
        if record[0] == per_app[idx][0][0]:
            swap = cursor + 1 if cursor + 1 < len(records) else cursor - 1
            records[cursor], records[swap] = records[swap], records[cursor]
            record = records[cursor]
        per_app[idx].append(record)
        cursor += 1
    for idx, recs in per_app.items():
        plan = plans[idx]
        plan.gt_incomplete_code = tuple(recs)
        plan.collects = tuple(info for info, _ret in recs)
        plan.retains = tuple(info for info, ret in recs if ret)

    # --- incomplete-via-code false positives -------------------------------
    fp_infos = ([InfoType.DEVICE_ID] * 8 + [InfoType.LOCATION] * 4
                + [InfoType.CONTACT] * 3)
    for idx, info in zip(clip(INC_CODE_FP), fp_infos):
        plan = plans[idx]
        plan.collects = (info,)
        plan.tricky_covered = (info,)
        # ground truth: the policy covers it; no gt_incomplete_code

    # --- incorrect apps -----------------------------------------------------
    if n_apps > INCORRECT_FP.stop:
        _plant_incorrect(plans)

    # --- inconsistent apps ---------------------------------------------------
    # 75 detectable conflicts: 19 planted on code-incomplete apps (the
    # overlap behind Section V-F's 282 distinct apps) + 56 on fresh apps.
    all_specs: list[tuple[InconsistencyPlan, ...]] = [
        (spec,) for spec in _inconsistency_specs()
    ] + [pair for pair in _both_row_specs()]

    def _conflicts(plan: AppPlan,
                   spec_group: tuple[InconsistencyPlan, ...]) -> bool:
        """A denial about info the app's code handles would trip the
        incorrect detector; keep the plants orthogonal."""
        from repro.semantics.resources import normalize_resource
        code_infos = set(plan.collects) | set(plan.retains)
        for spec in spec_group:
            info = normalize_resource(spec.resource)
            if info is not None and info in code_infos:
                return True
        return False

    overlap_candidates = clip(INC_CODE_ONLY)
    overlap_chosen: list[int] = []
    spec_cursor = 0
    for idx in overlap_candidates:
        if len(overlap_chosen) >= 19 or spec_cursor >= len(all_specs):
            break
        if _conflicts(plans[idx], all_specs[spec_cursor]):
            continue
        _apply_inconsistency(plans[idx], all_specs[spec_cursor])
        overlap_chosen.append(idx)
        spec_cursor += 1
    for idx in clip(INCONSISTENT_NEW):
        if spec_cursor >= len(all_specs):
            break
        _apply_inconsistency(plans[idx], all_specs[spec_cursor])
        spec_cursor += 1

    for idx, (lib, cat, res, verb) in zip(clip(INCONSISTENT_FN),
                                          _FN_SPECS):
        plan = plans[idx]
        plan.inconsistencies = (InconsistencyPlan(
            lib, cat, res, truly_inconsistent=True, fn_verb=verb,
        ),)
        plan.lib_ids = (lib,)
        plan.denials = (DenialPlan(cat, res, verb=verb),)

    for idx, (lib, cat) in zip(clip(INCONSISTENT_FP), _FP_SPECS):
        plan = plans[idx]
        plan.inconsistencies = (InconsistencyPlan(
            lib, cat, "information", truly_inconsistent=False,
        ),)
        plan.lib_ids = (lib,)
        plan.denials = (DenialPlan(
            cat, "information",
            sentence=_generic_denial_sentence(cat),
        ),)

    for k, idx in enumerate(clip(DISCLAIMER_APPS)):
        plan = plans[idx]
        ad = [s.lib_id for s in libs_by_category("ad")]
        lib = ad[(11 * k) % len(ad)]
        plan.inconsistencies = (InconsistencyPlan(
            lib, VerbCategory.COLLECT, "device identifiers",
            truly_inconsistent=False,  # disclaimed -> not questionable
        ),)
        plan.lib_ids = (lib,)
        plan.denials = (DenialPlan(VerbCategory.COLLECT,
                                   "device identifiers"),)
        plan.disclaimer = True

    return plans


def _permission_infos(permission: str) -> tuple[InfoType, ...]:
    from repro.description.permission_map import info_for_permission
    return info_for_permission(permission)


def _generic_denial_sentence(category: VerbCategory) -> str:
    if category is VerbCategory.USE:
        return "We do not process that information on our servers."
    return "We do not transmit that information over the internet."


def _plant_incorrect(plans: list[AppPlan]) -> None:
    idx = list(INCORRECT_TP)
    # app 1: birthdaylist-style (description + code, collect denial)
    plan = plans[idx[0]]
    plan.collects = (InfoType.CONTACT,)
    plan.covered = ((VerbCategory.USE, InfoType.CONTACT),)
    plan.denials = (DenialPlan(
        VerbCategory.COLLECT, "contacts",
        sentence=("We are not collecting your date of birth, phone "
                  "number, name or other personal information, nor "
                  "those of your contacts."),
    ),)
    plan.desc_permissions = ("android.permission.READ_CONTACTS",)
    plan.gt_incorrect = True
    # app 2: ringtone-style (description + code, collect denial)
    plan = plans[idx[1]]
    plan.collects = (InfoType.CONTACT,)
    plan.covered = ((VerbCategory.USE, InfoType.CONTACT),)
    plan.denials = (DenialPlan(VerbCategory.COLLECT, "contacts"),)
    plan.desc_permissions = ("android.permission.READ_CONTACTS",)
    plan.gt_incorrect = True
    # app 3: easyxapp-style (retention denial, contact -> log)
    plan = plans[idx[2]]
    plan.collects = (InfoType.CONTACT,)
    plan.retains = (InfoType.CONTACT,)
    plan.covered = ((VerbCategory.COLLECT, InfoType.CONTACT),)
    plan.denials = (DenialPlan(
        VerbCategory.RETAIN, "contacts",
        sentence="We will not store your real phone number, name "
                 "and contacts.",
    ),)
    plan.gt_incorrect = True
    # app 4: myobservatory-style (retention denial, location -> log)
    plan = plans[idx[3]]
    plan.collects = (InfoType.LOCATION,)
    plan.retains = (InfoType.LOCATION,)
    plan.covered = ((VerbCategory.COLLECT, InfoType.LOCATION),)
    plan.denials = (DenialPlan(
        VerbCategory.RETAIN, "location",
        sentence="Your location will not be stored by the app.",
    ),)
    plan.gt_incorrect = True

    # context false positives (zoho-style): denial, but the policy
    # grants the behaviour elsewhere; ground truth says correct.
    for fp_idx in INCORRECT_FP:
        plan = plans[fp_idx]
        plan.collects = (InfoType.ACCOUNT,)
        plan.covered = ((VerbCategory.COLLECT, InfoType.ACCOUNT),)
        plan.denials = (DenialPlan(
            VerbCategory.USE, "contents of your user account",
            sentence="We also do not process the contents of your "
                     "user account for serving targeted advertisements.",
        ),)
        plan.gt_incorrect = False


def _finalize_plan(plan: AppPlan, roll: float | None) -> None:
    """Coverage sentences, background behaviour, packing for one plan.

    *roll* is the plan's background random draw (``None`` outside the
    :data:`BACKGROUND` range) -- passed in rather than drawn here so
    the lazy per-index corpus can finalize any plan from a
    precomputed roll without replaying the whole sequential stream.
    """
    # positive coverage for everything the code does that is not a
    # planted gap and not a tricky FP cover
    missed = {info for info, _ret in plan.gt_incomplete_code}
    covered = list(plan.covered)
    for info in plan.collects:
        if info in missed or info in plan.tricky_covered:
            continue
        if not any(c_info is info for _cat, c_info in covered):
            covered.append((VerbCategory.COLLECT, info))
    for info in plan.retains:
        if info in missed or info in plan.tricky_covered:
            continue
        if not any(
            cat is VerbCategory.RETAIN and c_info is info
            for cat, c_info in covered
        ):
            covered.append((VerbCategory.RETAIN, info))
    plan.covered = tuple(covered)

    # background behaviour: some clean apps collect covered info
    if roll is not None:
        if roll < 0.35:
            info = (InfoType.DEVICE_ID, InfoType.LOCATION,
                    InfoType.ACCOUNT)[plan.index % 3]
            plan.collects = plan.collects + (info,)
            plan.covered = plan.covered + (
                (VerbCategory.COLLECT, info),
            )
        # unreachable sensitive code in a third of all apps
        if roll < 0.3:
            plan.dead_collects = (InfoType.CONTACT,)

    # packing: every 20th app ships packed
    plan.packed = plan.index % 20 == 7


def _assign_background_libs(plans: list[AppPlan],
                            rng: random.Random) -> None:
    """Libs for apps that have none yet, until 879 carry >= 1 lib."""
    libful = sum(1 for p in plans if p.lib_ids)
    for plan in plans:
        if libful >= TOTAL_APPS_WITH_LIBS:
            break
        if plan.lib_ids:
            continue
        picks = _background_libs(rng, plan.index)
        if picks:
            plan.lib_ids = picks
            libful += 1


__all__ = [
    "AppPlan",
    "DenialPlan",
    "InconsistencyPlan",
    "build_plans",
    "PLANT_STOP",
    "N_APPS",
    "DEFAULT_SEED",
    "APP_CATEGORIES",
    "TABLE3_PERMISSIONS",
    "PERMISSION_PLANT_PHRASES",
    "FIG13_DISTRIBUTION",
    "INC_DESC_ONLY",
    "INC_DESC_CODE",
    "INC_CODE_ONLY",
    "INC_CODE_FP",
    "INCORRECT_TP",
    "INCORRECT_FP",
    "INCONSISTENT_NEW",
    "INCONSISTENT_FN",
    "INCONSISTENT_FP",
    "INCONSISTENT_OVERLAP",
    "DISCLAIMER_APPS",
    "BACKGROUND",
    "TOTAL_APPS_WITH_LIBS",
]
