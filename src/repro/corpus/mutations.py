"""Policy mutations for robustness testing.

Systematic, semantics-preserving transformations of a policy document.
The detector invariant: a mutated policy must produce the same
resource sets as the original -- which the property tests and the
robustness benchmark enforce over the corpus.

Mutations:

- ``shuffle_sentences``: statement order never matters;
- ``inject_boilerplate``: extra no-op prose never matters;
- ``swap_resource_alias``: replacing a resource phrase with an
  ontology alias preserves *matching* (the sets differ textually but
  cover the same information);
- ``mangle_whitespace``: whitespace/casing noise;
- ``rewrap_html``: a different HTML shell.
"""

from __future__ import annotations

import random

from repro.corpus.htmlgen import policy_to_html
from repro.nlp.sentences import split_sentences

_EXTRA_BOILERPLATE = (
    "Thank you for trusting us with your experience.",
    "This document was last revised earlier this year.",
    "Capitalized terms have the meaning given in the terms of "
    "service.",
    "Our commitment to transparency guides everything below.",
)

#: alias swaps that stay inside one ontology entry.
ALIAS_SWAPS = {
    "location": "geographic location",
    "contacts": "address book",
    "device id": "device identifier",
    "phone number": "telephone number",
    "email address": "e-mail address",
}


def shuffle_sentences(policy_text: str, seed: int = 0) -> str:
    sentences = split_sentences(policy_text)
    rng = random.Random(seed)
    rng.shuffle(sentences)
    return " ".join(sentences)


def inject_boilerplate(policy_text: str, seed: int = 0) -> str:
    sentences = split_sentences(policy_text)
    rng = random.Random(seed)
    out: list[str] = []
    for sentence in sentences:
        out.append(sentence)
        if rng.random() < 0.4:
            out.append(rng.choice(_EXTRA_BOILERPLATE))
    return " ".join(out)


def swap_resource_alias(policy_text: str) -> str:
    out = policy_text
    for original, alias in ALIAS_SWAPS.items():
        out = out.replace(f"your {original}", f"your {alias}")
    return out


def mangle_whitespace(policy_text: str, seed: int = 0) -> str:
    rng = random.Random(seed)
    out: list[str] = []
    for ch in policy_text:
        out.append(ch)
        if ch == " " and rng.random() < 0.2:
            out.append("  "[: rng.randrange(1, 3)])
    return "".join(out)


def rewrap_html(policy_text: str, seed: int = 0) -> str:
    return policy_to_html(policy_text, title="Mutated Policy",
                          variant=seed)


MUTATIONS = {
    "shuffle": shuffle_sentences,
    "boilerplate": inject_boilerplate,
    "whitespace": mangle_whitespace,
}


__all__ = [
    "ALIAS_SWAPS",
    "MUTATIONS",
    "shuffle_sentences",
    "inject_boilerplate",
    "swap_resource_alias",
    "mangle_whitespace",
    "rewrap_html",
]
