"""The synthetic app store: assembled bundles + ground truth.

Two entry points share one deterministic layout:

- :class:`CorpusSpec` is the lazy corpus.  It precomputes only the
  *bounded* random layout (the planted problem groups below index
  335, the background rolls of the 1,197-app window, and the lib
  fill, all independent of ``n_apps``) and derives any
  :class:`AppPlan`/:class:`SyntheticApp` directly from its index --
  ``spec.app(i)`` never builds apps ``0..i-1``, and
  ``spec.iter_apps()`` streams a million-app corpus in constant
  memory.
- ``generate_app_store()`` is the historical eager entry point, now a
  thin materializing wrapper over :class:`CorpusSpec`; generation
  stays deterministic and cached per (seed, n_apps).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Iterator

from repro.core.checker import AppBundle
from repro.corpus.codegen import build_apk
from repro.corpus.descgen import render_description
from repro.corpus.libpolicies import lib_policy_text
from repro.corpus.plans import (
    BACKGROUND,
    DEFAULT_SEED,
    N_APPS,
    PLANT_STOP,
    TOTAL_APPS_WITH_LIBS,
    AppPlan,
    _background_libs,
    _finalize_plan,
    _package_for,
    _planted_prefix,
)
from repro.corpus.policygen import render_app_policy


@dataclass
class SyntheticApp:
    """One generated app: the PPChecker input plus its ground truth."""

    plan: AppPlan
    bundle: AppBundle

    @property
    def package(self) -> str:
        return self.plan.package


@dataclass
class AppStore:
    """The full corpus, materialized (a thin eager view over
    :class:`CorpusSpec` -- all historical call sites keep working)."""

    seed: int
    apps: list[SyntheticApp]

    def __len__(self) -> int:
        return len(self.apps)

    def lib_policy(self, lib_id: str) -> str | None:
        """Lib-policy source for :class:`repro.core.checker.PPChecker`."""
        try:
            return lib_policy_text(lib_id)
        except KeyError:
            return None

    def app(self, package: str) -> SyntheticApp | None:
        for app in self.apps:
            if app.package == package:
                return app
        return None


def _build_app(plan: AppPlan) -> SyntheticApp:
    from repro.corpus.htmlgen import policy_to_html

    policy_text = render_app_policy(plan)
    bundle = AppBundle(
        package=plan.package,
        apk=build_apk(plan),
        policy=policy_to_html(
            policy_text,
            title=f"Privacy Policy - {plan.package}",
            variant=plan.index,
        ),
        description=render_description(plan),
        policy_is_html=True,
    )
    return SyntheticApp(plan=plan, bundle=bundle)


class CorpusSpec:
    """A deterministic corpus addressed by ``(seed, n_apps)``.

    The expensive parts of corpus generation -- rendering policies,
    descriptions, and APKs -- happen per app, on demand.  The random
    layout behind the plans is bounded: every planted problem group
    lives below index :data:`~repro.corpus.plans.PLANT_STOP`, the
    background rolls cover only the 1,197-app paper window (indices
    beyond it are clean apps), and the lib fill stops at 879 lib-
    carrying apps.  ``plan(i)`` / ``app(i)`` are therefore O(1) after
    a one-time constant-size layout computation, for any ``n_apps``.

    The layout replays the exact draw sequence of
    :func:`repro.corpus.plans.build_plans`, so the lazy corpus is
    plan-for-plan equal to the eager one (pinned by the test suite).
    """

    def __init__(self, seed: int = DEFAULT_SEED,
                 n_apps: int = N_APPS) -> None:
        self.seed = seed
        self.n_apps = n_apps
        self._lock = threading.Lock()
        self._prefix: list[AppPlan] | None = None
        self._rolls: list[float] = []
        self._libs: dict[int, tuple[str, ...]] = {}

    def __len__(self) -> int:
        return self.n_apps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CorpusSpec(seed={self.seed}, n_apps={self.n_apps})"

    # -- layout ------------------------------------------------------------

    def _layout(self) -> list[AppPlan]:
        """The bounded random layout, computed once per spec."""
        with self._lock:
            if self._prefix is not None:
                return self._prefix
            rng = random.Random(self.seed)
            prefix = _planted_prefix(rng, self.n_apps)
            # the background-roll stream: one draw per index of the
            # BACKGROUND range present in this corpus, in index order
            # (identical to build_plans' finalize pass)
            bg_stop = min(self.n_apps, BACKGROUND.stop)
            self._rolls = [rng.random()
                           for _ in range(max(0, bg_stop - PLANT_STOP))]
            for plan in prefix:
                _finalize_plan(plan, None)
            # the lib fill examines plans in index order until 879
            # carry a lib; planted plans keep theirs, background
            # plans draw from the same stream
            libful = sum(1 for p in prefix if p.lib_ids)
            for index in range(self.n_apps):
                if libful >= TOTAL_APPS_WITH_LIBS:
                    break
                if index < len(prefix):
                    if prefix[index].lib_ids:
                        continue
                    picks = _background_libs(rng, index)
                    if picks:
                        prefix[index].lib_ids = picks
                        libful += 1
                    continue
                picks = _background_libs(rng, index)
                if picks:
                    self._libs[index] = picks
                    libful += 1
            self._prefix = prefix
            return prefix

    # -- per-index derivation ---------------------------------------------

    def plan(self, index: int) -> AppPlan:
        """The :class:`AppPlan` at *index*, derived without building
        any other plan's app."""
        if not 0 <= index < self.n_apps:
            raise IndexError(
                f"corpus index {index} out of range "
                f"(0..{self.n_apps - 1})")
        prefix = self._layout()
        if index < len(prefix):
            return prefix[index]
        package, category = _package_for(index)
        plan = AppPlan(index=index, package=package,
                       app_category=category)
        offset = index - PLANT_STOP
        roll = (self._rolls[offset]
                if 0 <= offset < len(self._rolls) else None)
        _finalize_plan(plan, roll)
        if index in self._libs:
            plan.lib_ids = self._libs[index]
        return plan

    def app(self, index: int) -> SyntheticApp:
        """Build the app at *index* (plan + bundle), on demand."""
        return _build_app(self.plan(index))

    def package_for(self, index: int) -> str:
        """The package name at *index* (no plan derivation needed)."""
        if not 0 <= index < self.n_apps:
            raise IndexError(
                f"corpus index {index} out of range "
                f"(0..{self.n_apps - 1})")
        return _package_for(index)[0]

    def iter_plans(self, start: int = 0,
                   stop: int | None = None) -> Iterator[AppPlan]:
        stop = self.n_apps if stop is None else min(stop, self.n_apps)
        for index in range(start, stop):
            yield self.plan(index)

    def iter_apps(self, start: int = 0,
                  stop: int | None = None) -> Iterator[SyntheticApp]:
        """Stream apps ``start..stop`` one at a time; peak memory is
        one app regardless of the range."""
        for plan in self.iter_plans(start, stop):
            yield _build_app(plan)

    # -- interop ----------------------------------------------------------

    def lib_policy(self, lib_id: str) -> str | None:
        """Lib-policy source for :class:`repro.core.checker.PPChecker`."""
        try:
            return lib_policy_text(lib_id)
        except KeyError:
            return None

    def materialize(self) -> AppStore:
        """Build every app eagerly (the historical representation)."""
        return AppStore(seed=self.seed, apps=list(self.iter_apps()))


_CACHE: dict[tuple[int, int], AppStore] = {}


def generate_app_store(seed: int = DEFAULT_SEED,
                       n_apps: int = N_APPS) -> AppStore:
    """Generate (or fetch the cached) synthetic app store."""
    key = (seed, n_apps)
    if key not in _CACHE:
        _CACHE[key] = CorpusSpec(seed=seed, n_apps=n_apps).materialize()
    return _CACHE[key]


__all__ = ["SyntheticApp", "AppStore", "CorpusSpec",
           "generate_app_store"]
