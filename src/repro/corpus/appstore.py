"""The synthetic app store: assembled bundles + ground truth.

``generate_app_store()`` is the corpus entry point used by tests,
benchmarks, and examples.  Generation is deterministic and cached per
(seed, n_apps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.checker import AppBundle
from repro.corpus.codegen import build_apk
from repro.corpus.descgen import render_description
from repro.corpus.libpolicies import lib_policy_text
from repro.corpus.plans import AppPlan, DEFAULT_SEED, N_APPS, build_plans
from repro.corpus.policygen import render_app_policy


@dataclass
class SyntheticApp:
    """One generated app: the PPChecker input plus its ground truth."""

    plan: AppPlan
    bundle: AppBundle

    @property
    def package(self) -> str:
        return self.plan.package


@dataclass
class AppStore:
    """The full corpus."""

    seed: int
    apps: list[SyntheticApp]

    def __len__(self) -> int:
        return len(self.apps)

    def lib_policy(self, lib_id: str) -> str | None:
        """Lib-policy source for :class:`repro.core.checker.PPChecker`."""
        try:
            return lib_policy_text(lib_id)
        except KeyError:
            return None

    def app(self, package: str) -> SyntheticApp | None:
        for app in self.apps:
            if app.package == package:
                return app
        return None


def _build_app(plan: AppPlan) -> SyntheticApp:
    from repro.corpus.htmlgen import policy_to_html

    policy_text = render_app_policy(plan)
    bundle = AppBundle(
        package=plan.package,
        apk=build_apk(plan),
        policy=policy_to_html(
            policy_text,
            title=f"Privacy Policy - {plan.package}",
            variant=plan.index,
        ),
        description=render_description(plan),
        policy_is_html=True,
    )
    return SyntheticApp(plan=plan, bundle=bundle)


_CACHE: dict[tuple[int, int], AppStore] = {}


def generate_app_store(seed: int = DEFAULT_SEED,
                       n_apps: int = N_APPS) -> AppStore:
    """Generate (or fetch the cached) synthetic app store."""
    key = (seed, n_apps)
    if key not in _CACHE:
        plans = build_plans(seed=seed, n_apps=n_apps)
        _CACHE[key] = AppStore(
            seed=seed, apps=[_build_app(plan) for plan in plans],
        )
    return _CACHE[key]


__all__ = ["SyntheticApp", "AppStore", "generate_app_store"]
