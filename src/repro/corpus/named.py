"""The apps the paper names, reconstructed.

Every concrete app the paper discusses, rebuilt as a checkable bundle
with the documented policy wording, description, and code behaviour:

===========================  =============================================
package                      paper's finding
===========================  =============================================
com.dooing.dooing            incomplete: location in description+code,
                             absent from the policy (Fig. 2)
com.qisiemoji.inputmethod    incomplete (retained): installed-package
                             list written to the log (Fig. 9)
com.marcow.birthdaylist      incorrect: denies collecting contacts;
                             description and code say otherwise (V-D)
com.herman.ringtone          incorrect: same pattern (V-D)
com.easyxapp.secret          incorrect: "we will not store your real
                             phone number, name and contacts" vs a
                             contacts-to-log path (II-B, V-D)
hko.MyObservatory_v1_0       incorrect: location-to-log path vs a
                             no-retention promise (V-D)
com.imangi.templerun2        inconsistent with Unity3d over location
                             (Fig. 3)
com.shortbreakstudios...     disclaimer suppresses the lib conflict
                             (IV-C)
com.StaffMark                inconsistency false positive: generic
                             "that information" vs AdMob's "personal
                             information" (V-E)
com.starlitt.disableddating  inconsistency false negative: "display"
                             outside the verb set (V-E)
com.zoho.mail                incorrect-policy false positive: scoped
                             account denial plus legitimate access (V-D)
===========================  =============================================

:data:`EXPECTED` records, for each app, what the *paper* reports
PPChecker finding -- the integration suite asserts the reproduction
behaves identically, error modes included.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.apk import Apk
from repro.android.dex import DexClass, DexFile, Instruction, Method
from repro.android.manifest import AndroidManifest, Component
from repro.core.checker import AppBundle

_QUERY = ("android.content.ContentResolver->query(uri,projection,"
          "selection,selectionArgs,sortOrder)")
_PARSE = "android.net.Uri->parse(uriString)"
_LOG_I = "android.util.Log->i(tag,msg)"
_LOG_E = "android.util.Log->e(tag,msg)"


@dataclass(frozen=True)
class Expectation:
    """What the paper says PPChecker reports for this app."""

    incomplete: bool = False
    incorrect: bool = False
    inconsistent: bool = False
    note: str = ""

    @property
    def any_problem(self) -> bool:
        return self.incomplete or self.incorrect or self.inconsistent


def _apk(package: str, permissions: set[str],
         instructions: list[Instruction],
         extra_classes: tuple[str, ...] = ()) -> Apk:
    dex = DexFile()
    activity_name = f"{package}.MainActivity"
    activity = DexClass(name=activity_name,
                        superclass="android.app.Activity")
    method = Method(class_name=activity_name, name="onCreate",
                    params=("bundle",))
    method.instructions = instructions + [Instruction(op="return")]
    activity.add_method(method)
    dex.add_class(activity)
    for class_name in extra_classes:
        dex.add_class(DexClass(name=class_name))
    manifest = AndroidManifest(package=package,
                               permissions=set(permissions))
    manifest.add_component(Component(name=activity_name,
                                     kind="activity"))
    return Apk(manifest=manifest, dex=dex)


def _contacts_query(start: int = 0) -> list[Instruction]:
    v = [f"v{start + i}" for i in range(3)]
    return [
        Instruction(op="const-string", dest=v[0],
                    literal="content://contacts"),
        Instruction(op="invoke", dest=v[1], target=_PARSE,
                    args=(v[0],)),
        Instruction(op="invoke", dest=v[2], target=_QUERY,
                    args=(v[1],)),
    ]


def build_named_apps() -> dict[str, AppBundle]:
    """All named paper apps as checkable bundles."""
    apps: dict[str, AppBundle] = {}

    apps["com.dooing.dooing"] = AppBundle(
        package="com.dooing.dooing",
        apk=_apk(
            "com.dooing.dooing",
            {"android.permission.ACCESS_FINE_LOCATION"},
            [
                Instruction(op="invoke", dest="v0",
                            target="android.location.Location->"
                                   "getLatitude()"),
                Instruction(op="invoke", dest="v1",
                            target="android.location.Location->"
                                   "getLongitude()"),
            ],
        ),
        policy="We may collect your email address when you sign up. "
               "We may share anonymous statistics with partners.",
        description="Location aware tasks will help you to utilize "
                    "your field force in optimum way. The app uses "
                    "gps to assign nearby work.",
    )

    apps["com.qisiemoji.inputmethod"] = AppBundle(
        package="com.qisiemoji.inputmethod",
        apk=_apk(
            "com.qisiemoji.inputmethod",
            set(),
            [
                Instruction(op="invoke", dest="v0",
                            target="android.content.pm.PackageManager->"
                                   "getInstalledPackages(flags)"),
                Instruction(op="const-string", dest="v1",
                            literal="TAG"),
                Instruction(op="invoke", target=_LOG_E,
                            args=("v1", "v0")),
            ],
        ),
        policy="We may collect the words you type to improve "
               "suggestions.",
        description="A colorful emoji keyboard.",
    )

    apps["com.marcow.birthdaylist"] = AppBundle(
        package="com.marcow.birthdaylist",
        apk=_apk("com.marcow.birthdaylist",
                 {"android.permission.READ_CONTACTS"},
                 _contacts_query()),
        policy="We use your contacts to find birthdays. We are not "
               "collecting your date of birth, phone number, name or "
               "other personal information, nor those of your "
               "contacts.",
        description="This app synchronizes all birthdays with your "
                    "contacts list and facebook.",
    )

    apps["com.herman.ringtone"] = AppBundle(
        package="com.herman.ringtone",
        apk=_apk("com.herman.ringtone",
                 {"android.permission.READ_CONTACTS"},
                 _contacts_query()),
        policy="We use your contacts so you can assign ringtones. "
               "We will not collect your contacts.",
        description="Assign a ringtone to anyone in your contacts "
                    "list.",
    )

    apps["com.easyxapp.secret"] = AppBundle(
        package="com.easyxapp.secret",
        apk=_apk(
            "com.easyxapp.secret",
            {"android.permission.READ_CONTACTS"},
            _contacts_query() + [
                Instruction(op="const-string", dest="v3",
                            literal="TAG"),
                Instruction(op="invoke", target=_LOG_I,
                            args=("v3", "v2")),
            ],
        ),
        policy="We may access your contacts to help you share "
               "secrets with friends. We will not store your real "
               "phone number, name and contacts.",
        description="Share secrets anonymously with people you know.",
    )

    apps["hko.MyObservatory_v1_0"] = AppBundle(
        package="hko.MyObservatory_v1_0",
        apk=_apk(
            "hko.MyObservatory_v1_0",
            {"android.permission.ACCESS_FINE_LOCATION"},
            [
                Instruction(op="invoke", dest="v0",
                            target="android.location.Location->"
                                   "getLatitude()"),
                Instruction(op="const-string", dest="v1",
                            literal="TAG"),
                Instruction(op="invoke", target=_LOG_I,
                            args=("v1", "v0")),
            ],
        ),
        policy="We may collect your location to provide local "
               "weather. Your location will not be stored by the "
               "app.",
        description="Official weather of the observatory.",
    )

    apps["com.imangi.templerun2"] = AppBundle(
        package="com.imangi.templerun2",
        apk=_apk("com.imangi.templerun2", set(), [],
                 extra_classes=("com.unity3d.player.UnityPlayer",)),
        policy="We do not collect your location information. We may "
               "collect anonymous gameplay statistics.",
        description="Run for your life in this endless runner.",
    )

    apps["com.shortbreakstudios.HammerTime"] = AppBundle(
        package="com.shortbreakstudios.HammerTime",
        apk=_apk("com.shortbreakstudios.HammerTime", set(), [],
                 extra_classes=("com.unity3d.player.UnityPlayer",)),
        policy="We do not collect your location information. We "
               "encourage you to review the privacy practices of "
               "these third parties before disclosing any personally "
               "identifiable information, as we are not responsible "
               "for the privacy practices of those sites.",
        description="Smash everything in sight.",
    )

    apps["com.StaffMark"] = AppBundle(
        package="com.StaffMark",
        apk=_apk("com.StaffMark", set(), [],
                 extra_classes=("com.google.ads.AdView",)),
        policy="We do not transmit that information over the "
               "internet.",
        description="Staffing jobs on the go.",
    )

    apps["com.starlitt.disableddating"] = AppBundle(
        package="com.starlitt.disableddating",
        apk=_apk("com.starlitt.disableddating", set(), [],
                 extra_classes=("com.google.ads.AdView",)),
        policy="We will never display any of your personal "
               "information.",
        description="Meet new people who understand you.",
    )

    apps["com.zoho.mail"] = AppBundle(
        package="com.zoho.mail",
        apk=_apk(
            "com.zoho.mail",
            {"android.permission.GET_ACCOUNTS"},
            [
                Instruction(op="invoke", dest="v0",
                            target="android.accounts.AccountManager->"
                                   "getAccounts()"),
            ],
        ),
        policy="We may provide your personal information and the "
               "contents of your user account to our employees. We "
               "also do not process the contents of your user "
               "account for serving targeted advertisements.",
        description="Secure business email.",
    )

    return apps


#: what the paper reports for each named app.
EXPECTED: dict[str, Expectation] = {
    "com.dooing.dooing": Expectation(
        incomplete=True,
        note="location in description and code, missing from policy"),
    "com.qisiemoji.inputmethod": Expectation(
        incomplete=True,
        note="installed-package list retained in the log"),
    "com.marcow.birthdaylist": Expectation(
        incorrect=True, note="contacts denial vs description + code"),
    "com.herman.ringtone": Expectation(
        incorrect=True, note="contacts denial vs description + code"),
    "com.easyxapp.secret": Expectation(
        incorrect=True, note="contacts-to-log vs no-store promise"),
    "hko.MyObservatory_v1_0": Expectation(
        incorrect=True, note="location-to-log vs no-store promise"),
    "com.imangi.templerun2": Expectation(
        inconsistent=True, note="location conflict with Unity3d"),
    "com.shortbreakstudios.HammerTime": Expectation(
        note="conflict exists but the disclaimer suppresses it"),
    "com.StaffMark": Expectation(
        inconsistent=True,
        note="FALSE POSITIVE: generic 'that information' matches "
             "AdMob's 'personal information'"),
    "com.starlitt.disableddating": Expectation(
        note="FALSE NEGATIVE: 'display' outside the verb set"),
    "com.zoho.mail": Expectation(
        incorrect=True,
        note="FALSE POSITIVE: scoped denial without context"),
}

#: the lib policies the named cases rely on.
NAMED_LIB_POLICIES: dict[str, str] = {
    "unity3d": "We may receive your location information. We may "
               "collect your device identifiers.",
    "admob": "We will share personal information with companies we "
             "work with. We may collect your device identifiers.",
}


def named_lib_policy(lib_id: str) -> str | None:
    return NAMED_LIB_POLICIES.get(lib_id)


__all__ = [
    "Expectation",
    "EXPECTED",
    "NAMED_LIB_POLICIES",
    "build_named_apps",
    "named_lib_policy",
]
