"""Privacy policies of the 81 third-party libraries (Section V-A).

Each library's behaviour set (what its policy asserts it collects,
uses, retains, or discloses) is deterministic: index-based rules per
category plus explicit entries for the libraries named in the
inconsistency plants.  :func:`lib_policy_text` renders the behaviours
into policy prose with :mod:`repro.corpus.policygen` templates.
"""

from __future__ import annotations

from functools import lru_cache

from repro.android.libs import libs_by_category
from repro.policy.verbs import VerbCategory

_C = VerbCategory.COLLECT
_U = VerbCategory.USE
_R = VerbCategory.RETAIN
_D = VerbCategory.DISCLOSE

#: explicit behaviours for libs referenced by name in the plants.
_EXPLICIT: dict[str, frozenset[tuple[VerbCategory, str]]] = {
    "admob": frozenset({
        (_C, "device identifiers"), (_C, "location"),
        (_D, "device identifiers"), (_D, "personal information"),
        (_U, "personal information"),
    }),
    "flurry": frozenset({
        (_C, "device identifiers"), (_C, "location"),
        (_D, "device identifiers"), (_D, "personal information"),
        (_U, "personal information"),
    }),
    "inmobi": frozenset({
        (_C, "device identifiers"), (_C, "location"),
        (_D, "personal information"), (_U, "personal information"),
    }),
    "mopub": frozenset({
        (_C, "device identifiers"), (_C, "location"),
        (_D, "device identifiers"), (_U, "personal information"),
    }),
    "chartboost": frozenset({
        (_C, "device identifiers"), (_D, "device identifiers"),
        (_U, "personal information"),
    }),
    "vungle": frozenset({
        (_C, "device identifiers"), (_D, "personal information"),
    }),
    "unity3d": frozenset({
        (_C, "device identifiers"), (_C, "location"),
        (_U, "usage data"),
    }),
}


@lru_cache(maxsize=None)
def lib_behaviors(lib_id: str) -> frozenset[tuple[VerbCategory, str]]:
    """The (category, resource) assertions of one lib's policy.

    Index-rule behaviours unioned with the explicit per-lib entries --
    the inconsistency plants rely on both layers being present.
    """
    explicit = _EXPLICIT.get(lib_id, frozenset())
    for category_name, rules in (
        ("ad", _ad_rules), ("social", _social_rules),
        ("devtool", _devtool_rules),
    ):
        libs = libs_by_category(category_name)
        for index, spec in enumerate(libs):
            if spec.lib_id == lib_id:
                return frozenset(rules(index)) | explicit
    raise KeyError(f"unknown lib id: {lib_id!r}")


def _ad_rules(index: int) -> set[tuple[VerbCategory, str]]:
    behaviors = {(_C, "device identifiers"), (_U, "usage data")}
    if index % 2 == 0:
        behaviors.add((_C, "location"))
    if index % 2 == 1:
        behaviors.add((_D, "device identifiers"))
    if index % 3 == 0:
        behaviors.add((_D, "personal information"))
    if index % 5 == 0:
        behaviors.add((_D, "location"))
    if index % 7 == 0:
        behaviors.add((_U, "personal information"))
    return behaviors


def _social_rules(index: int) -> set[tuple[VerbCategory, str]]:
    behaviors = {
        (_C, "contacts"), (_C, "name"), (_C, "email address"),
        (_D, "personal information"),
    }
    if index % 2 == 0:
        behaviors.add((_C, "profile information"))
    return behaviors


def _devtool_rules(index: int) -> set[tuple[VerbCategory, str]]:
    behaviors = {
        (_C, "device identifiers"), (_C, "ip address"),
        (_U, "crash data"),
    }
    if index % 4 == 0:
        behaviors.add((_R, "usage data"))
    return behaviors


@lru_cache(maxsize=None)
def lib_policy_text(lib_id: str) -> str:
    """Render the lib's policy document."""
    from repro.corpus.policygen import render_lib_policy
    behaviors = sorted(lib_behaviors(lib_id),
                       key=lambda b: (b[0].value, b[1]))
    return render_lib_policy(lib_id, behaviors)


__all__ = ["lib_behaviors", "lib_policy_text"]
