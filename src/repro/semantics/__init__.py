"""Semantic substrate: the private-information ontology and Explicit
Semantic Analysis (ESA) similarity.

PPChecker compares information phrases ("your precise location" vs.
"location") with ESA over a knowledge base.  The paper used a
Wikipedia-derived base; offline we embed a privacy-domain concept base
(:mod:`repro.semantics.knowledge`) that covers the information types
the detectors reason about, and keep the paper's interface and 0.67
decision threshold.
"""

from repro.semantics.compiled import (
    CompiledKB,
    CompiledKBError,
    compile_kb,
    load_or_compile,
)
from repro.semantics.resources import (
    InfoType,
    INFO_TYPES,
    load_compiled_kb,
    normalize_resource,
)
from repro.semantics.esa import (
    EsaModel,
    default_model,
    match_sets,
    similarity,
    similarity_many,
)

__all__ = [
    "InfoType",
    "INFO_TYPES",
    "normalize_resource",
    "EsaModel",
    "default_model",
    "similarity",
    "similarity_many",
    "match_sets",
    "CompiledKB",
    "CompiledKBError",
    "compile_kb",
    "load_or_compile",
    "load_compiled_kb",
]
