"""The compiled ESA knowledge base: packed arrays + binary artifact.

The scalar ESA plane keeps the knowledge base as a dict-of-dicts
(``term -> {concept_id: weight}``).  This module compiles that
representation into packed parallel arrays -- a CSR-style layout of
``(offsets, concept_ids, weights)`` over a sorted term table -- that
the merge-join data plane (:mod:`repro.semantics.esa`) walks instead
of hashing dict keys:

- :func:`compile_kb` builds a :class:`CompiledKB` from the concept
  articles with *bit-identical* TF-IDF floats: same accumulation and
  normalization order as the historical dict build, so the two planes
  agree to the last ulp.
- :meth:`CompiledKB.to_bytes` / :meth:`CompiledKB.from_bytes` persist
  the compiled base (plus its inverted layout) as a versioned binary
  artifact: magic, schema version, byte order, CRC-32 checksum, then
  length-prefixed sections.  A truncated, bit-flipped, or
  wrong-schema artifact raises :class:`CompiledKBError` -- it can
  never load as silently-wrong weights.
- :func:`load_or_compile` is the fallback ladder: load the artifact
  if it verifies, otherwise recompile from source and rewrite it.
  Outcomes are counted in the ``esa_kb_artifact`` row of the
  ``nlp_caches`` telemetry (``hits`` = artifact loads, ``misses`` =
  recompiles, ``warnings`` = corrupt artifacts recovered from).

Array decode/validation selects a backend at import: bulk numpy
``frombuffer`` checks when numpy is installed, a pure-Python scan
otherwise.  The cosine kernel itself stays pure Python in both
backends because the equivalence contract pins the float summation
order (numpy's pairwise reductions would drift in the last ulp).
"""

from __future__ import annotations

import math
import os
import re
import struct
import sys
import tempfile
import zlib
from array import array
from dataclasses import dataclass, field

from repro.hashing import fingerprint
from repro.memo import MemoCache
from repro.nlp.tokenizer import lemmatize

try:  # numpy-optional: bulk artifact validation only
    import numpy as _np
except ImportError:  # pragma: no cover - depends on environment
    _np = None

#: which array backend the artifact loader uses ("numpy" | "python")
BACKEND = "numpy" if _np is not None else "python"

#: artifact file magic ("Repro Knowledge Base")
KB_MAGIC = b"RKB1"

#: bump when the binary layout or the compile recipe changes
KB_SCHEMA_VERSION = 1

#: environment variable naming the artifact cache directory; set to
#: the empty string to disable artifact persistence entirely
KB_CACHE_ENV = "REPRO_KB_CACHE_DIR"

_HEADER = struct.Struct("<4sHBxIQ")  # magic, schema, byteorder, crc, len

_STOPWORDS = {
    "the", "a", "an", "of", "to", "and", "or", "in", "on", "for",
    "with", "by", "from", "at", "as", "is", "are", "be", "was",
    "were", "will", "would", "may", "might", "can", "could", "shall",
    "should", "that", "this", "these", "those", "it", "its", "we",
    "you", "your", "our", "their", "his", "her", "my", "i", "any",
    "all", "some", "such", "other", "about", "into", "than", "then",
    "so", "if", "when", "which", "who", "whom", "what", "how", "not",
    "no", "do", "does", "did", "have", "has", "had",
}

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[-'][a-z0-9]+)*")


def terms_of(text: str) -> list[str]:
    """Lower-case, tokenize, lemmatize, drop stopwords."""
    out = []
    for raw in _TOKEN_RE.findall(text.lower()):
        if raw in _STOPWORDS:
            continue
        lemma = lemmatize(raw)
        if lemma in _STOPWORDS or not lemma:
            continue
        out.append(lemma)
    return out


class CompiledKBError(ValueError):
    """The artifact bytes are not a loadable compiled KB."""


class _ArtifactStats(MemoCache):
    """Counters for the artifact fallback ladder, surfaced through
    :func:`repro.memo.cache_stats` as the ``esa_kb_artifact`` row.
    ``hits`` = verified artifact loads, ``misses`` = fresh compiles,
    ``warnings`` = corrupt artifacts that fell back to recompilation.
    """

    def __init__(self) -> None:
        super().__init__("esa_kb_artifact", max_entries=1)
        self.warnings = 0

    def stats(self) -> dict[str, int]:
        row = super().stats()
        row["warnings"] = self.warnings
        return row

    def clear(self) -> None:
        super().clear()
        self.warnings = 0


#: process-wide ladder counters (strong ref keeps the registry row)
KB_ARTIFACT_STATS = _ArtifactStats()


def articles_fingerprint(articles: dict[str, str]) -> str:
    """Content hash identifying one concept-article inventory."""
    return fingerprint({"kb_schema": KB_SCHEMA_VERSION,
                        "articles": articles})


@dataclass
class CompiledKB:
    """Packed parallel-array form of the concept knowledge base.

    Term *t* (row ``tid = term_index[t]``) owns the slice
    ``offsets[tid]:offsets[tid + 1]`` of the ``cids`` / ``weights``
    arrays: its L2-normalized TF-IDF interpretation vector, sorted by
    ascending concept id.  All floats are bit-identical to the
    historical dict-of-dicts build.
    """

    concepts: tuple[str, ...]
    terms: tuple[str, ...]
    offsets: array          # 'q', len(terms) + 1
    cids: array             # 'i', concatenated, ascending per term
    weights: array          # 'd', parallel to cids
    articles_fp: str
    term_index: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.term_index = {t: i for i, t in enumerate(self.terms)}

    # -- views -------------------------------------------------------------

    def term_slice(self, term: str) -> tuple[int, int] | None:
        """The ``(start, end)`` row of *term*, or None if unknown."""
        tid = self.term_index.get(term)
        if tid is None:
            return None
        return self.offsets[tid], self.offsets[tid + 1]

    def term_vector_dicts(self) -> dict[str, dict[int, float]]:
        """The dict-of-dicts view the scalar plane runs on.  Keys are
        in ascending concept-id order (the canonical order both
        planes sum in)."""
        out: dict[str, dict[int, float]] = {}
        for tid, term in enumerate(self.terms):
            start, end = self.offsets[tid], self.offsets[tid + 1]
            out[term] = dict(zip(self.cids[start:end],
                                 self.weights[start:end]))
        return out

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Versioned binary artifact: header (magic, schema version,
        byte order, CRC-32, payload length) + length-prefixed
        sections."""
        sections = [
            self.articles_fp.encode("utf-8"),
            "\x00".join(self.concepts).encode("utf-8"),
            "\x00".join(self.terms).encode("utf-8"),
            self.offsets.tobytes(),
            self.cids.tobytes(),
            self.weights.tobytes(),
        ]
        payload = bytearray()
        for section in sections:
            payload += struct.pack("<Q", len(section))
            payload += section
        payload = bytes(payload)
        byteorder = 1 if sys.byteorder == "little" else 2
        return _HEADER.pack(KB_MAGIC, KB_SCHEMA_VERSION, byteorder,
                            zlib.crc32(payload), len(payload)) + payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "CompiledKB":
        """Parse and *verify* an artifact; raises
        :class:`CompiledKBError` on any truncation, checksum or
        schema mismatch, or structural corruption."""
        if len(data) < _HEADER.size:
            raise CompiledKBError("artifact truncated before header")
        magic, schema, byteorder, crc, length = _HEADER.unpack_from(data)
        if magic != KB_MAGIC:
            raise CompiledKBError(f"bad magic {magic!r}")
        if schema != KB_SCHEMA_VERSION:
            raise CompiledKBError(
                f"schema version {schema} != {KB_SCHEMA_VERSION}")
        if byteorder != (1 if sys.byteorder == "little" else 2):
            raise CompiledKBError("artifact byte order != host")
        payload = data[_HEADER.size:]
        if len(payload) != length:
            raise CompiledKBError(
                f"payload is {len(payload)} bytes, header says {length}")
        if zlib.crc32(payload) != crc:
            raise CompiledKBError("checksum mismatch")

        sections: list[bytes] = []
        cursor = 0
        for _ in range(6):
            if cursor + 8 > len(payload):
                raise CompiledKBError("section table truncated")
            (size,) = struct.unpack_from("<Q", payload, cursor)
            cursor += 8
            if cursor + size > len(payload):
                raise CompiledKBError("section overruns payload")
            sections.append(payload[cursor:cursor + size])
            cursor += size
        if cursor != len(payload):
            raise CompiledKBError("trailing bytes after sections")

        try:
            articles_fp = sections[0].decode("utf-8")
            # "".split("\x00") is ('',) — an empty section means an
            # empty table, not one empty name (tokens are never "")
            concepts = tuple(sections[1].decode("utf-8").split("\x00")) \
                if sections[1] else ()
            terms = tuple(sections[2].decode("utf-8").split("\x00")) \
                if sections[2] else ()
        except UnicodeDecodeError as exc:
            raise CompiledKBError(f"undecodable string table: {exc}") \
                from exc
        offsets = array("q")
        cids = array("i")
        weights = array("d")
        try:
            offsets.frombytes(sections[3])
            cids.frombytes(sections[4])
            weights.frombytes(sections[5])
        except ValueError as exc:
            raise CompiledKBError(f"misaligned array section: {exc}") \
                from exc
        _validate_layout(len(concepts), len(terms), offsets, cids,
                         weights)
        return cls(concepts=concepts, terms=terms, offsets=offsets,
                   cids=cids, weights=weights, articles_fp=articles_fp)


def _validate_layout(n_concepts: int, n_terms: int, offsets: array,
                     cids: array, weights: array) -> None:
    """Structural invariants beyond the checksum: offsets form a
    monotone cover of the value arrays, concept ids stay in range and
    ascend within each term row."""
    if len(offsets) != n_terms + 1:
        raise CompiledKBError(
            f"{len(offsets)} offsets for {n_terms} terms")
    if offsets[0] != 0 or offsets[-1] != len(cids) \
            or len(cids) != len(weights):
        raise CompiledKBError("offsets do not cover the value arrays")
    if _np is not None:
        off = _np.frombuffer(offsets, dtype=_np.int64)
        ids = _np.frombuffer(cids, dtype=_np.int32)
        if len(off) > 1 and bool((off[1:] < off[:-1]).any()):
            raise CompiledKBError("offsets not monotone")
        if len(ids) and (int(ids.min()) < 0
                         or int(ids.max()) >= n_concepts):
            raise CompiledKBError("concept id out of range")
    else:
        _validate_layout_python(n_concepts, offsets, cids)
    # ascending-within-row is the merge-join precondition
    for tid in range(n_terms):
        row = cids[offsets[tid]:offsets[tid + 1]]
        for k in range(1, len(row)):
            if row[k] <= row[k - 1]:
                raise CompiledKBError(
                    f"term row {tid} not strictly ascending")


def _validate_layout_python(n_concepts: int, offsets: array,
                            cids: array) -> None:
    """Pure-Python half of the backend split (numpy does the same
    checks with bulk comparisons)."""
    for k in range(1, len(offsets)):
        if offsets[k] < offsets[k - 1]:
            raise CompiledKBError("offsets not monotone")
    for cid in cids:
        if cid < 0 or cid >= n_concepts:
            raise CompiledKBError("concept id out of range")


def compile_kb(articles: dict[str, str]) -> CompiledKB:
    """Compile the concept articles into packed arrays.

    The float recipe -- ``1 + log(tf)``, smoothed IDF, L2
    normalization summed in ascending concept-id order -- reproduces
    the historical :class:`~repro.semantics.esa.EsaModel` dict build
    bit-for-bit.
    """
    concepts = tuple(sorted(articles))
    tf: dict[str, dict[int, float]] = {}
    doc_freq: dict[str, int] = {}
    for cidx, concept in enumerate(concepts):
        counts: dict[str, int] = {}
        for term in terms_of(articles[concept]):
            counts[term] = counts.get(term, 0) + 1
        for term, count in counts.items():
            tf.setdefault(term, {})[cidx] = 1.0 + math.log(count)
            doc_freq[term] = doc_freq.get(term, 0) + 1
    n_docs = len(concepts)
    terms = tuple(sorted(tf))
    offsets = array("q", [0])
    cids = array("i")
    weights = array("d")
    for term in terms:
        vec = tf[term]
        idf = math.log((1.0 + n_docs) / (1.0 + doc_freq[term])) + 1.0
        # vec keys ascend (concepts were enumerated in sorted order),
        # so the norm sums in ascending concept-id order
        weighted = [(c, w * idf) for c, w in vec.items()]
        norm = math.sqrt(sum(w * w for _, w in weighted))
        for c, w in weighted:
            cids.append(c)
            weights.append(w / norm)
        offsets.append(len(cids))
    return CompiledKB(concepts=concepts, terms=terms, offsets=offsets,
                      cids=cids, weights=weights,
                      articles_fp=articles_fingerprint(articles))


# -- the artifact ladder ---------------------------------------------------


def default_artifact_dir() -> str | None:
    """Where compiled-KB artifacts live; honours
    :data:`KB_CACHE_ENV` (empty string disables persistence)."""
    env = os.environ.get(KB_CACHE_ENV)
    if env is not None:
        return env or None
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def artifact_path(articles: dict[str, str],
                  directory: str | None = None) -> str | None:
    """The artifact file for *articles* under *directory* (default:
    :func:`default_artifact_dir`), or None when persistence is off."""
    if directory is None:
        directory = default_artifact_dir()
    if not directory:
        return None
    fp = articles_fingerprint(articles)
    return os.path.join(
        directory, f"esa_kb_v{KB_SCHEMA_VERSION}_{fp[:16]}.rkb")


def save_artifact(kb: CompiledKB, path: str) -> None:
    """Atomically persist *kb* (write temp + rename, so a crashed
    writer never leaves a half-artifact under the final name)."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".rkb.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(kb.to_bytes())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_artifact(path: str) -> CompiledKB:
    """Read and verify one artifact file."""
    with open(path, "rb") as handle:
        return CompiledKB.from_bytes(handle.read())


def load_or_compile(articles: dict[str, str],
                    directory: str | None = None) -> CompiledKB:
    """The fallback ladder: verified artifact -> recompile.

    A missing artifact is a plain ``miss`` (compile + persist); a
    corrupt one (truncated, bit-flipped, wrong schema, or compiled
    from different articles) additionally bumps the ``warnings``
    counter and is overwritten with a fresh compile.  Never raises on
    artifact damage and never returns unverified weights.
    """
    path = artifact_path(articles, directory)
    expected_fp = articles_fingerprint(articles)
    if path is not None and os.path.exists(path):
        try:
            kb = load_artifact(path)
            if kb.articles_fp != expected_fp:
                raise CompiledKBError(
                    "artifact compiled from different articles")
            KB_ARTIFACT_STATS.hits += 1
            return kb
        except (CompiledKBError, OSError):
            KB_ARTIFACT_STATS.warnings += 1
    kb = compile_kb(articles)
    KB_ARTIFACT_STATS.misses += 1
    if path is not None:
        try:
            save_artifact(kb, path)
        except OSError:
            pass  # persistence is best-effort; the KB is already built
    return kb


__all__ = [
    "BACKEND",
    "KB_MAGIC",
    "KB_SCHEMA_VERSION",
    "KB_CACHE_ENV",
    "KB_ARTIFACT_STATS",
    "CompiledKB",
    "CompiledKBError",
    "articles_fingerprint",
    "artifact_path",
    "compile_kb",
    "default_artifact_dir",
    "load_artifact",
    "load_or_compile",
    "save_artifact",
    "terms_of",
]
