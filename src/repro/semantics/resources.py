"""The private-information ontology.

Canonical information types that PPChecker's maps target:
sensitive APIs -> info type, content-provider URIs -> info type,
permissions -> info type, and policy phrases -> info type (via ESA).

The type inventory follows Section III-C of the paper: device ID, IP
address, cookie, location, contact, account, calendar, telephone
number, camera, audio, and app list -- plus SMS (from the PScout URI
map), e-mail address, person name, age/birthday, and browser history,
which occur in policies and descriptions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.semantics.compiled import (
    CompiledKB,
    default_artifact_dir,
    load_or_compile,
)


class InfoType(enum.Enum):
    """Canonical categories of private information."""

    LOCATION = "location"
    DEVICE_ID = "device id"
    IP_ADDRESS = "ip address"
    COOKIE = "cookie"
    CONTACT = "contact"
    ACCOUNT = "account"
    CALENDAR = "calendar"
    PHONE_NUMBER = "phone number"
    CAMERA = "camera"
    AUDIO = "audio"
    APP_LIST = "app list"
    SMS = "sms"
    EMAIL_ADDRESS = "email address"
    PERSON_NAME = "name"
    BIRTHDAY = "birthday"
    BROWSER_HISTORY = "browser history"
    # policy-only types: no Android API yields them directly, but real
    # policies (and lib policies) assert behaviours about them
    PAYMENT = "payment information"
    HEALTH = "health data"
    GOVERNMENT_ID = "government id"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class InfoSpec:
    """An information type with its natural-language aliases."""

    info: InfoType
    aliases: tuple[str, ...]
    requires_permissions: tuple[str, ...] = ()


INFO_TYPES: dict[InfoType, InfoSpec] = {
    InfoType.LOCATION: InfoSpec(
        InfoType.LOCATION,
        (
            "location", "geolocation", "geographic location",
            "precise location", "coarse location", "gps", "latitude",
            "longitude", "position", "whereabouts", "gps coordinates",
            "location data", "location information",
        ),
        ("android.permission.ACCESS_FINE_LOCATION",
         "android.permission.ACCESS_COARSE_LOCATION"),
    ),
    InfoType.DEVICE_ID: InfoSpec(
        InfoType.DEVICE_ID,
        (
            "device id", "device identifier", "device identifiers",
            "imei", "imsi", "udid",
            "android id", "device serial number", "hardware identifier",
            "unique device identifier", "unique device identifiers",
            "advertising id", "device ids",
        ),
        ("android.permission.READ_PHONE_STATE",),
    ),
    InfoType.IP_ADDRESS: InfoSpec(
        InfoType.IP_ADDRESS,
        ("ip address", "internet protocol address", "ip",
         "network address"),
    ),
    InfoType.COOKIE: InfoSpec(
        InfoType.COOKIE,
        ("cookie", "cookies", "web beacon", "pixel tag",
         "tracking technology", "local storage object"),
    ),
    InfoType.CONTACT: InfoSpec(
        InfoType.CONTACT,
        (
            "contact", "contacts", "address book", "contact list",
            "contacts list", "phone book", "contact information",
        ),
        ("android.permission.READ_CONTACTS",
         "android.permission.WRITE_CONTACTS"),
    ),
    InfoType.ACCOUNT: InfoSpec(
        InfoType.ACCOUNT,
        (
            "account", "accounts", "user account", "account name",
            "google account", "account information", "credential",
        ),
        ("android.permission.GET_ACCOUNTS",),
    ),
    InfoType.CALENDAR: InfoSpec(
        InfoType.CALENDAR,
        ("calendar", "calendar event", "calendar entries",
         "appointment", "schedule"),
        ("android.permission.READ_CALENDAR",
         "android.permission.WRITE_CALENDAR"),
    ),
    InfoType.PHONE_NUMBER: InfoSpec(
        InfoType.PHONE_NUMBER,
        (
            "phone number", "telephone number", "mobile number",
            "msisdn", "cell phone number", "real phone number",
        ),
        ("android.permission.READ_PHONE_STATE",),
    ),
    InfoType.CAMERA: InfoSpec(
        InfoType.CAMERA,
        ("camera", "photo", "photos", "picture", "pictures", "image",
         "video", "photographs"),
        ("android.permission.CAMERA",),
    ),
    InfoType.AUDIO: InfoSpec(
        InfoType.AUDIO,
        ("audio", "microphone", "voice", "sound", "voice recording",
         "audio recording"),
        ("android.permission.RECORD_AUDIO",),
    ),
    InfoType.APP_LIST: InfoSpec(
        InfoType.APP_LIST,
        (
            "app list", "installed applications", "installed apps",
            "application list", "package list", "installed packages",
            "list of installed applications", "other apps",
        ),
    ),
    InfoType.SMS: InfoSpec(
        InfoType.SMS,
        ("sms", "text message", "text messages", "sms message",
         "short message"),
        ("android.permission.READ_SMS", "android.permission.RECEIVE_SMS"),
    ),
    InfoType.EMAIL_ADDRESS: InfoSpec(
        InfoType.EMAIL_ADDRESS,
        ("email address", "e-mail address", "email", "e-mail",
         "electronic mail address"),
    ),
    InfoType.PERSON_NAME: InfoSpec(
        InfoType.PERSON_NAME,
        ("name", "real name", "full name", "first name", "last name",
         "username", "user name"),
    ),
    InfoType.BIRTHDAY: InfoSpec(
        InfoType.BIRTHDAY,
        ("birthday", "date of birth", "birth date", "age",
         "birthdate", "data of birth"),
    ),
    InfoType.BROWSER_HISTORY: InfoSpec(
        InfoType.BROWSER_HISTORY,
        ("browser history", "browsing history", "web history",
         "bookmarks", "visited pages"),
        ("com.android.browser.permission.READ_HISTORY_BOOKMARKS",),
    ),
    InfoType.PAYMENT: InfoSpec(
        InfoType.PAYMENT,
        ("payment information", "credit card", "credit card number",
         "billing information", "card details", "payment details",
         "bank account"),
    ),
    InfoType.HEALTH: InfoSpec(
        InfoType.HEALTH,
        ("health data", "health information", "medical information",
         "fitness data", "heart rate", "medical records"),
    ),
    InfoType.GOVERNMENT_ID: InfoSpec(
        InfoType.GOVERNMENT_ID,
        ("government id", "social security number", "ssn",
         "passport number", "national id", "driver license number"),
    ),
}

_ALIAS_INDEX: dict[str, InfoType] = {}
for _spec in INFO_TYPES.values():
    for _alias in _spec.aliases:
        _ALIAS_INDEX[_alias] = _spec.info
    _ALIAS_INDEX[_spec.info.value] = _spec.info


def normalize_resource(phrase: str) -> InfoType | None:
    """Map a phrase to an :class:`InfoType` by exact alias lookup.

    This is the cheap pre-filter; phrases that do not match an alias go
    through ESA similarity instead.
    """
    key = " ".join(phrase.lower().split())
    for junk in ("your ", "my ", "our ", "the ", "a ", "an "):
        if key.startswith(junk):
            key = key[len(junk):]
    return _ALIAS_INDEX.get(key)


def load_compiled_kb(articles: dict[str, str],
                     directory: str | None = None) -> CompiledKB:
    """The startup entry point for the compiled ESA knowledge base.

    Loads the versioned binary artifact for *articles* from
    *directory* (default: :func:`~repro.semantics.compiled.
    default_artifact_dir`, honouring ``REPRO_KB_CACHE_DIR``) when one
    exists and verifies, otherwise compiles from source and persists
    a fresh artifact.  Corruption falls back to recompilation and
    bumps the ``esa_kb_artifact`` warning counter in the
    ``nlp_caches`` telemetry -- never a crash, never unverified
    weights.
    """
    return load_or_compile(articles, directory)


def kb_artifact_dir() -> str | None:
    """Where the compiled-KB artifacts live (None: persistence off)."""
    return default_artifact_dir()


def aliases_of(info: InfoType) -> tuple[str, ...]:
    return INFO_TYPES[info].aliases


def permissions_for(info: InfoType) -> tuple[str, ...]:
    return INFO_TYPES[info].requires_permissions


__all__ = [
    "InfoType",
    "InfoSpec",
    "INFO_TYPES",
    "normalize_resource",
    "aliases_of",
    "permissions_for",
    "load_compiled_kb",
    "kb_artifact_dir",
]
