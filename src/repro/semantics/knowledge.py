"""The embedded concept knowledge base used by ESA.

The original paper interprets texts against Wikipedia concepts.  We
embed a compact privacy-domain concept base: each concept is a short
"article" whose term distribution characterizes the concept.  Texts
that share dominant concepts come out similar; texts about different
information types do not.

The article wording is deliberately redundant -- term frequency is the
signal ESA uses.
"""

from __future__ import annotations

CONCEPT_ARTICLES: dict[str, str] = {
    "geographic location": """
        location location location geographic geolocation position
        gps latitude longitude coordinates whereabouts place
        precise coarse fine location data location information
        location services navigation map nearby geographic position
        gps coordinates satellite cell tower wifi positioning
        """,
    "device identifier": """
        device device identifier id imei imsi udid android id
        serial number hardware identifier unique device identifier
        advertising id device id handset identifier phone state
        device information device model manufacturer build
        """,
    "internet protocol address": """
        ip address internet protocol address network address
        ip connection routing server request header address
        internet address network identifier host
        """,
    "http cookie": """
        cookie cookies web beacon beacons pixel pixel tag tags
        tracking technology technologies local storage browser
        cookie identifier session cookie persistent cookie
        third-party cookie opt-out cookie
        """,
    "address book contact": """
        contact contacts address book contact list contacts list
        phone book phonebook contact information friends entries
        contact entries stored contacts contact details
        """,
    "user account": """
        account accounts user account account name google account
        account information credentials login username password
        profile account holder registered account sign-in
        """,
    "calendar data": """
        calendar calendar event events appointment appointments
        schedule calendar entries reminder meeting agenda date
        calendar information
        """,
    "telephone number": """
        phone number telephone number mobile number msisdn cell
        phone number real phone number caller number dialed
        telephone phone line number
        """,
    "camera media": """
        camera photo photos picture pictures image images video
        videos photograph photographs snapshot capture lens
        gallery media camera roll
        """,
    "microphone audio": """
        audio microphone voice sound recording recordings speech
        voice recording audio recording mic record sound capture
        """,
    "installed applications": """
        app list apps applications installed applications installed
        apps application list package packages package list
        installed packages running apps other apps software list
        """,
    "sms message": """
        sms text message text messages sms message short message
        mms messages inbox sent messages message content
        """,
    "email address": """
        email e-mail email address e-mail address electronic mail
        mailbox mail address email account inbox address
        """,
    "person name": """
        name real name full name first name last name surname
        username user name nickname given name family name
        """,
    "date of birth": """
        birthday date of birth birth date birthdate age data of
        birth born year of birth demographic age range
        """,
    "browsing history": """
        browser history browsing history web history bookmarks
        visited pages pages visited sites visited browsing data
        search history history
        """,
    "payment information": """
        payment payments credit card cards billing bank account
        transaction purchase card number cardholder invoice
        payment information billing information payment details
        """,
    "health data": """
        health medical fitness heart rate wellness medical records
        condition symptom diagnosis prescription workout steps
        health data health information
        """,
    "government identifier": """
        government id social security number ssn passport national
        id driver license identification document taxpayer
        """,
    # --- general concepts that keep unrelated texts apart -------------
    "personal information": """
        personal information personally identifiable information
        personal data private information user information
        information data details pii sensitive information
        """,
    "service provision": """
        service services functionality feature features operation
        provide improve enhance maintain support performance
        """,
    "advertising": """
        advertising advertisement advertisements ads ad advertiser
        advertisers marketing promotional targeted advertising
        interest-based sponsored campaigns
        """,
    "analytics": """
        analytics statistics statistical measurement metrics usage
        data analysis aggregate aggregated reporting insights
        crash diagnostics performance
        """,
    "third party": """
        third party third parties third-party partner partners
        affiliate affiliates vendor vendors service provider
        providers companies business partners
        """,
    "legal compliance": """
        law legal regulation compliance court order government
        authority enforcement rights obligation statute subpoena
        """,
    "security": """
        security secure encryption encrypted protection safeguard
        safeguards unauthorized access breach integrity
        confidentiality
        """,
    "children privacy": """
        children child minor minors under age thirteen coppa
        parental consent parent guardian kids
        """,
}


__all__ = ["CONCEPT_ARTICLES"]
