"""Explicit Semantic Analysis (Gabrilovich & Markovitch, 2007).

Given a knowledge base of concept articles, each term receives a vector
of TF-IDF weights over concepts (its *interpretation vector*).  A text
is interpreted as the centroid of its terms' vectors; the semantic
similarity of two texts is the cosine of their interpretation vectors.

PPChecker uses ``Similarity(a, b) > threshold`` with ``threshold =
0.67`` (following AutoCog) to decide whether two information phrases
refer to the same thing.

Two data planes serve that predicate, both exact and bit-identical:

- the **compiled plane** (default): the knowledge base is compiled
  into packed parallel arrays (:mod:`repro.semantics.compiled`),
  interpretation vectors are sorted ``(concept_id, weight)`` arrays,
  and :func:`_merge_cosine` walks the two sorted arrays instead of
  hashing dict keys.  The batch entry points
  (:meth:`EsaModel.match_sets`, :meth:`EsaModel.any_match`,
  :meth:`EsaModel.similarity_many`, :meth:`EsaModel.group_hits`)
  interpret every distinct text once per call and drive one inverted
  concept-index pass per policy, so cold runs -- where the memo LRUs
  cannot help -- stop paying per-pair re-interpretation.
- the **scalar plane** (``REPRO_NO_VECTOR=1``): the historical
  dict-of-dicts representation and nested-loop matchers, kept fully
  runnable as the differential reference.

All vectors sum in *ascending concept-id order* (the canonical
order), which is what makes the two planes agree to the last ulp; the
differential suite (``tests/integration/test_vector_equivalence.py``)
proves study output is byte-identical across vectorized, scalar, and
``REPRO_NO_MEMO=1`` runs.  Memoization (:mod:`repro.memo`) layers on
top of either plane.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.memo import MISS, MemoCache, memo_enabled, vector_enabled
from repro.semantics.compiled import (
    CompiledKB,
    compile_kb,
    terms_of as _terms,
)
from repro.semantics.knowledge import CONCEPT_ARTICLES

#: The decision threshold used throughout the paper (Section IV-A).
DEFAULT_THRESHOLD = 0.67


def _norm_key(text: str) -> str:
    """Cache key: casefold and collapse whitespace.  Tokenization is
    case-insensitive and whitespace-blind, so two texts with the same
    key always yield the same interpretation vector."""
    return " ".join(text.lower().split())


def _cosine(key_a: str, vec_a: dict[int, float],
            key_b: str, vec_b: dict[int, float]) -> float:
    """Scalar-plane dot product of two L2-normalized sparse vectors,
    clamped to [0, 1].  The iteration order is canonical (smaller
    vector first, ties broken by key; keys ascend within a vector) so
    the float result is independent of the argument order -- a
    prerequisite for the symmetric pair cache *and* for agreeing
    bitwise with :func:`_merge_cosine`."""
    if (len(vec_b), key_b) < (len(vec_a), key_a):
        vec_a, vec_b = vec_b, vec_a
    dot = sum(w * vec_b.get(c, 0.0) for c, w in vec_a.items())
    return max(0.0, min(1.0, dot))


def _merge_cosine(cids_a: list[int], weights_a: list[float],
                  cids_b: list[int], weights_b: list[float]) -> float:
    """Compiled-plane dot product: a two-pointer merge join over two
    ascending ``(concept_id, weight)`` arrays, clamped to [0, 1].

    Shared concepts are summed in ascending concept-id order -- the
    same order :func:`_cosine` sums canonical vectors in (its extra
    ``w * 0.0`` terms are exact no-ops) -- so the two kernels agree
    bit-for-bit, and the join is symmetric by construction."""
    i = j = 0
    len_a = len(cids_a)
    len_b = len(cids_b)
    dot = 0.0
    while i < len_a and j < len_b:
        ca = cids_a[i]
        cb = cids_b[j]
        if ca == cb:
            dot += weights_a[i] * weights_b[j]
            i += 1
            j += 1
        elif ca < cb:
            i += 1
        else:
            j += 1
    return max(0.0, min(1.0, dot))


class Interp:
    """One memoized interpretation: the canonical sparse dict plus
    lazily-derived sorted parallel arrays.  Shared across callers and
    treated as immutable."""

    __slots__ = ("key", "vec", "_cids", "_weights")

    def __init__(self, key: str, vec: dict[int, float]) -> None:
        self.key = key
        self.vec = vec
        self._cids: list[int] | None = None
        self._weights: list[float] | None = None

    def arrays(self) -> tuple[list[int], list[float]]:
        """``(concept_ids, weights)`` sorted ascending.  The dict is
        built in ascending concept-id order, so this is a straight
        materialization, not a re-sort."""
        if self._cids is None:
            self._cids = list(self.vec)
            self._weights = list(self.vec.values())
        return self._cids, self._weights


@dataclass
class EsaModel:
    """An ESA interpreter over a concept knowledge base."""

    articles: dict[str, str]
    threshold: float = DEFAULT_THRESHOLD
    #: precompiled knowledge base; compiled from ``articles`` when not
    #: supplied (``default_model`` loads it from the binary artifact)
    kb: CompiledKB | None = field(default=None, repr=False)
    _term_vectors: dict[str, dict[int, float]] = field(
        default_factory=dict, repr=False
    )
    _concepts: list[str] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        # bounded memo caches (see repro.memo); texts repeat massively
        # across apps, so both have study-scale hit rates
        self._interp_cache = MemoCache("esa_interpret")
        self._sim_cache = MemoCache("esa_similarity", max_entries=262144)
        # batch side-views: one (interps, inverted index) per distinct
        # text tuple -- the surface lists and policy phrase pools the
        # detectors probe with repeat across thousands of calls
        self._group_cache = MemoCache("esa_group_index",
                                      max_entries=8192)
        if self.kb is None:
            self.kb = compile_kb(self.articles)
        self._concepts = list(self.kb.concepts)
        # the scalar plane's dict-of-dicts view, derived from the same
        # compiled floats so REPRO_NO_VECTOR=1 stays bit-identical
        self._term_vectors = self.kb.term_vector_dicts()

    def fingerprint(self) -> str:
        """Content hash of the knowledge base + threshold (part of
        the ``detect`` stage cache key via ``InfoMatcher``)."""
        from repro.hashing import fingerprint

        return fingerprint({"esa_kb": self.kb.articles_fp,
                            "threshold": self.threshold})

    # -- interpretation ----------------------------------------------------

    def interpret(self, text: str) -> dict[int, float]:
        """Interpretation vector of *text* (sparse, L2-normalized,
        keys ascending).

        Returns a fresh dict; the memoized vector stays private."""
        return dict(self._interp(text).vec)

    def _compute_interpret(self, text: str) -> dict[int, float]:
        """Centroid of the text's term vectors, canonicalized to
        ascending concept-id order (accumulation per concept follows
        term order; the norm sums ascending)."""
        terms = _terms(text)
        if not terms:
            return {}
        if vector_enabled():
            return self._accumulate_compiled(terms)
        acc: dict[int, float] = {}
        for term in terms:
            vec = self._term_vectors.get(term)
            if vec is None:
                continue
            for cidx, weight in vec.items():
                acc[cidx] = acc.get(cidx, 0.0) + weight
        if not acc:
            return {}
        items = sorted(acc.items())
        norm = math.sqrt(sum(w * w for _, w in items))
        if norm == 0.0:
            return {}
        return {c: w / norm for c, w in items}

    def _accumulate_compiled(self, terms: list[str]) -> dict[int, float]:
        """Compiled-plane accumulation: dense per-concept sums driven
        by the packed KB arrays.  Per-concept addition order (term
        order) and the ascending-order norm match the dict plane, so
        the floats are bit-identical."""
        kb = self.kb
        offsets, cids, weights = kb.offsets, kb.cids, kb.weights
        term_index = kb.term_index
        acc = [0.0] * len(self._concepts)
        touched = False
        for term in terms:
            tid = term_index.get(term)
            if tid is None:
                continue
            touched = True
            for k in range(offsets[tid], offsets[tid + 1]):
                acc[cids[k]] += weights[k]
        if not touched:
            return {}
        items = [(c, w) for c, w in enumerate(acc) if w != 0.0]
        norm = math.sqrt(sum(w * w for _, w in items))
        if norm == 0.0:
            return {}
        return {c: w / norm for c, w in items}

    def _interp(self, text: str) -> Interp:
        """The memoized :class:`Interp` of *text* (shared; treat as
        immutable)."""
        key = _norm_key(text)
        interp = self._interp_cache.get(key)
        if interp is MISS:
            interp = Interp(key, self._compute_interpret(text))
            self._interp_cache.put(key, interp)
        return interp

    def _interp_local(self, text: str,
                      local: dict[str, Interp]) -> Interp:
        """Per-call interpretation dedup: within one batch call every
        distinct text interprets once even with the memo LRUs
        disabled (reuse is exact -- same raw text, same normalized
        key, same vector).  Keyed on the raw string so repeats skip
        :func:`_norm_key` entirely."""
        interp = local.get(text)
        if interp is None:
            interp = self._interp(text)
            local[text] = interp
        return interp

    def _group_view(self, texts: list[str], local: dict[str, Interp],
                    ) -> tuple[list[Interp], dict[int, list[int]]]:
        """The ``(interps, inverted concept index)`` view of a text
        list, memoized per distinct tuple: the surface lists and
        policy phrase pools the batch entry points probe with repeat
        across thousands of calls, so a cold study run builds each
        view once instead of once per call.  With memoization
        disabled the view rebuilds per call (through the per-call
        local dedup), which is the same exact computation."""
        key = tuple(texts)
        view = self._group_cache.get(key)
        if view is MISS:
            interps = [self._interp_local(t, local) for t in texts]
            view = (interps, self._inverted_index(interps))
            self._group_cache.put(key, view)
        return view

    def _pair_sim(self, a: Interp, b: Interp) -> float:
        if not a.vec or not b.vec:
            return 0.0
        pair = (a.key, b.key) if a.key <= b.key else (b.key, a.key)
        cached = self._sim_cache.get(pair)
        if cached is not MISS:
            return cached
        if vector_enabled():
            cids_a, weights_a = a.arrays()
            cids_b, weights_b = b.arrays()
            sim = _merge_cosine(cids_a, weights_a, cids_b, weights_b)
        elif memo_enabled() and a.vec.keys().isdisjoint(b.vec.keys()):
            # shared-concept prune: disjoint sparse supports have an
            # exactly-zero dot product, so skipping the sum is exact
            sim = 0.0
        else:
            sim = _cosine(a.key, a.vec, b.key, b.vec)
        self._sim_cache.put(pair, sim)
        return sim

    def similarity(self, text_a: str, text_b: str) -> float:
        """Cosine similarity of the two interpretation vectors in [0, 1]."""
        return self._pair_sim(self._interp(text_a), self._interp(text_b))

    def same_thing(self, text_a: str, text_b: str,
                   threshold: float | None = None) -> bool:
        """The paper's matching predicate: similarity above threshold."""
        limit = self.threshold if threshold is None else threshold
        return self.similarity(text_a, text_b) > limit

    # -- batch entry points ------------------------------------------------

    def similarity_many(self, text: str,
                        candidates: list[str]) -> list[float]:
        """``similarity(text, c)`` for every candidate, interpreting
        *text* once (and each distinct candidate once).  Agrees
        pairwise with :meth:`similarity`."""
        interp = self._interp(text)
        if vector_enabled():
            local: dict[str, Interp] = {}
            return [self._pair_sim(interp,
                                   self._interp_local(c, local))
                    for c in candidates]
        return [self._pair_sim(interp, self._interp(c))
                for c in candidates]

    def _inverted_index(self, interps: list[Interp],
                        ) -> dict[int, list[int]]:
        """concept id -> indexes of the interps containing it."""
        index: dict[int, list[int]] = {}
        for j, interp in enumerate(interps):
            for concept in interp.vec:
                index.setdefault(concept, []).append(j)
        return index

    def _candidates(self, interp: Interp,
                    index: dict[int, list[int]]) -> list[int]:
        """Shared-concept candidates, ascending.  Skipped indexes
        have cosine exactly 0; exact for any ``threshold >= 0``."""
        return sorted({
            j for concept in interp.vec
            for j in index.get(concept, ())
        })

    def any_match(self, texts_a: list[str], texts_b: list[str],
                  threshold: float | None = None) -> bool:
        """Is any (a, b) pair above the threshold?  Early-exits on the
        first hit; equals ``any(same_thing(a, b) for a for b)``."""
        limit = self.threshold if threshold is None else threshold
        if vector_enabled():
            local: dict[str, Interp] = {}
            interps_a, index_a = self._group_view(texts_a, local)
            for text_b in texts_b:
                interp_b = self._interp_local(text_b, local)
                if not interp_b.vec:
                    continue
                for i in self._candidates(interp_b, index_a):
                    if self._pair_sim(interps_a[i], interp_b) > limit:
                        return True
            return False
        interps_b = [self._interp(t) for t in texts_b]
        for text_a in texts_a:
            interp_a = self._interp(text_a)
            if not interp_a.vec:
                continue
            for interp_b in interps_b:
                if self._pair_sim(interp_a, interp_b) > limit:
                    return True
        return False

    def match_sets(self, texts_a: list[str], texts_b: list[str],
                   threshold: float | None = None,
                   ) -> list[tuple[int, int, float]]:
        """All ``(i, j, similarity)`` with similarity above the
        threshold, ordered by ``(i, j)`` -- the order of the nested
        reference loop, so first-hit call sites stay byte-identical.

        On the compiled plane (and on the scalar plane with
        memoization enabled), candidates are pruned through a
        shared-concept inverted index: a pair whose vectors share no
        concept has cosine exactly 0 and is never scored.  The
        pruning is exact for any ``threshold >= 0``.  The compiled
        plane indexes *texts_a* (the repeated side -- memoized per
        distinct tuple) and walks *texts_b*; hits sort back into the
        reference ``(i, j)`` order, and each pair's similarity is the
        canonical :func:`_merge_cosine` value, so the output is
        byte-identical regardless of the scan direction.
        """
        limit = self.threshold if threshold is None else threshold
        if vector_enabled():
            local: dict[str, Interp] = {}
            interps_a, index_a = self._group_view(texts_a, local)
            out: list[tuple[int, int, float]] = []
            for j, text_b in enumerate(texts_b):
                interp_b = self._interp_local(text_b, local)
                if not interp_b.vec:
                    continue
                for i in self._candidates(interp_b, index_a):
                    sim = self._pair_sim(interps_a[i], interp_b)
                    if sim > limit:
                        out.append((i, j, sim))
            out.sort(key=lambda hit: (hit[0], hit[1]))
            return out
        out = []
        if not memo_enabled():
            for i, text_a in enumerate(texts_a):
                for j, text_b in enumerate(texts_b):
                    sim = self.similarity(text_a, text_b)
                    if sim > limit:
                        out.append((i, j, sim))
            return out
        interps_b = [self._interp(t) for t in texts_b]
        index = self._inverted_index(interps_b)
        for i, text_a in enumerate(texts_a):
            interp_a = self._interp(text_a)
            if not interp_a.vec:
                continue
            for j in self._candidates(interp_a, index):
                sim = self._pair_sim(interp_a, interps_b[j])
                if sim > limit:
                    out.append((i, j, sim))
        return out

    def group_hits(self, groups: list[list[str]], texts_b: list[str],
                   threshold: float | None = None) -> list[set[int]]:
        """For each *group* of texts, the set of indexes ``j`` such
        that some ``(a, b_j)`` pair scores above the threshold.

        This is the one-pass-per-policy primitive behind Alg. 1-5
        batching: *texts_b* (a policy's phrases) is interpreted and
        indexed once, then every group (an information type's
        surfaces) probes the shared index.  Per group it equals
        ``{j for j, b in enumerate(texts_b)
        if any_match(group, [b])}``.
        """
        limit = self.threshold if threshold is None else threshold
        if not vector_enabled():
            out: list[set[int]] = []
            for group in groups:
                hits: set[int] = set()
                for j, text_b in enumerate(texts_b):
                    for text_a in group:
                        if self.similarity(text_a, text_b) > limit:
                            hits.add(j)
                            break
                out.append(hits)
            return out
        local: dict[str, Interp] = {}
        interps_b, index_b = self._group_view(texts_b, local)
        out = []
        for group in groups:
            hits = set()
            for text_a in group:
                interp_a = self._interp_local(text_a, local)
                if not interp_a.vec:
                    continue
                for j in self._candidates(interp_a, index_b):
                    if j in hits:
                        continue
                    if self._pair_sim(interp_a, interps_b[j]) > limit:
                        hits.add(j)
            out.append(hits)
        return out

    def cache_info(self) -> dict[str, dict[str, int]]:
        """Hit/miss/size counters of this model's memo caches."""
        return {
            "interpret": self._interp_cache.stats(),
            "similarity": self._sim_cache.stats(),
        }

    def top_concepts(self, text: str, k: int = 3) -> list[tuple[str, float]]:
        """The k concepts with the highest interpretation weight."""
        vec = self.interpret(text)
        ranked = sorted(vec.items(), key=lambda cw: -cw[1])[:k]
        return [(self._concepts[c], w) for c, w in ranked]


_DEFAULT: EsaModel | None = None


def default_model() -> EsaModel:
    """The process-wide ESA model over the embedded knowledge base.

    The compiled knowledge base loads from the versioned binary
    artifact when one verifies (see
    :func:`repro.semantics.resources.load_compiled_kb`), falling back
    to an in-memory compile."""
    global _DEFAULT
    if _DEFAULT is None:
        from repro.semantics.resources import load_compiled_kb

        _DEFAULT = EsaModel(CONCEPT_ARTICLES,
                            kb=load_compiled_kb(CONCEPT_ARTICLES))
    return _DEFAULT


def similarity(text_a: str, text_b: str) -> float:
    """Module-level convenience wrapper over :func:`default_model`."""
    return default_model().similarity(text_a, text_b)


def similarity_many(text: str, candidates: list[str]) -> list[float]:
    """Module-level convenience wrapper over :func:`default_model`."""
    return default_model().similarity_many(text, candidates)


def match_sets(texts_a: list[str], texts_b: list[str],
               threshold: float | None = None,
               ) -> list[tuple[int, int, float]]:
    """Module-level convenience wrapper over :func:`default_model`."""
    return default_model().match_sets(texts_a, texts_b, threshold)


__all__ = [
    "EsaModel",
    "Interp",
    "DEFAULT_THRESHOLD",
    "default_model",
    "similarity",
    "similarity_many",
    "match_sets",
]
