"""Explicit Semantic Analysis (Gabrilovich & Markovitch, 2007).

Given a knowledge base of concept articles, each term receives a vector
of TF-IDF weights over concepts (its *interpretation vector*).  A text
is interpreted as the centroid of its terms' vectors; the semantic
similarity of two texts is the cosine of their interpretation vectors.

PPChecker uses ``Similarity(a, b) > threshold`` with ``threshold =
0.67`` (following AutoCog) to decide whether two information phrases
refer to the same thing.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.nlp.tokenizer import lemmatize
from repro.semantics.knowledge import CONCEPT_ARTICLES

#: The decision threshold used throughout the paper (Section IV-A).
DEFAULT_THRESHOLD = 0.67

_STOPWORDS = {
    "the", "a", "an", "of", "to", "and", "or", "in", "on", "for",
    "with", "by", "from", "at", "as", "is", "are", "be", "was",
    "were", "will", "would", "may", "might", "can", "could", "shall",
    "should", "that", "this", "these", "those", "it", "its", "we",
    "you", "your", "our", "their", "his", "her", "my", "i", "any",
    "all", "some", "such", "other", "about", "into", "than", "then",
    "so", "if", "when", "which", "who", "whom", "what", "how", "not",
    "no", "do", "does", "did", "have", "has", "had",
}

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[-'][a-z0-9]+)*")


def _terms(text: str) -> list[str]:
    """Lower-case, tokenize, lemmatize, drop stopwords."""
    out = []
    for raw in _TOKEN_RE.findall(text.lower()):
        if raw in _STOPWORDS:
            continue
        lemma = lemmatize(raw)
        if lemma in _STOPWORDS or not lemma:
            continue
        out.append(lemma)
    return out


@dataclass
class EsaModel:
    """An ESA interpreter over a concept knowledge base."""

    articles: dict[str, str]
    threshold: float = DEFAULT_THRESHOLD
    _term_vectors: dict[str, dict[int, float]] = field(
        default_factory=dict, repr=False
    )
    _concepts: list[str] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._concepts = sorted(self.articles)
        # term frequency per concept
        tf: dict[str, dict[int, float]] = {}
        doc_freq: dict[str, int] = {}
        for cidx, concept in enumerate(self._concepts):
            counts: dict[str, int] = {}
            for term in _terms(self.articles[concept]):
                counts[term] = counts.get(term, 0) + 1
            for term, count in counts.items():
                tf.setdefault(term, {})[cidx] = 1.0 + math.log(count)
                doc_freq[term] = doc_freq.get(term, 0) + 1
        n_docs = len(self._concepts)
        for term, vec in tf.items():
            idf = math.log((1.0 + n_docs) / (1.0 + doc_freq[term])) + 1.0
            weighted = {c: w * idf for c, w in vec.items()}
            norm = math.sqrt(sum(w * w for w in weighted.values()))
            self._term_vectors[term] = {
                c: w / norm for c, w in weighted.items()
            }

    # -- interpretation ----------------------------------------------------

    def interpret(self, text: str) -> dict[int, float]:
        """Interpretation vector of *text* (sparse, L2-normalized)."""
        acc: dict[int, float] = {}
        terms = _terms(text)
        if not terms:
            return {}
        for term in terms:
            vec = self._term_vectors.get(term)
            if vec is None:
                continue
            for cidx, weight in vec.items():
                acc[cidx] = acc.get(cidx, 0.0) + weight
        norm = math.sqrt(sum(w * w for w in acc.values()))
        if norm == 0.0:
            return {}
        return {c: w / norm for c, w in acc.items()}

    def similarity(self, text_a: str, text_b: str) -> float:
        """Cosine similarity of the two interpretation vectors in [0, 1]."""
        va = self.interpret(text_a)
        vb = self.interpret(text_b)
        if not va or not vb:
            return 0.0
        if len(vb) < len(va):
            va, vb = vb, va
        dot = sum(w * vb.get(c, 0.0) for c, w in va.items())
        return max(0.0, min(1.0, dot))

    def same_thing(self, text_a: str, text_b: str,
                   threshold: float | None = None) -> bool:
        """The paper's matching predicate: similarity above threshold."""
        limit = self.threshold if threshold is None else threshold
        return self.similarity(text_a, text_b) > limit

    def top_concepts(self, text: str, k: int = 3) -> list[tuple[str, float]]:
        """The k concepts with the highest interpretation weight."""
        vec = self.interpret(text)
        ranked = sorted(vec.items(), key=lambda cw: -cw[1])[:k]
        return [(self._concepts[c], w) for c, w in ranked]


_DEFAULT: EsaModel | None = None


def default_model() -> EsaModel:
    """The process-wide ESA model over the embedded knowledge base."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = EsaModel(CONCEPT_ARTICLES)
    return _DEFAULT


def similarity(text_a: str, text_b: str) -> float:
    """Module-level convenience wrapper over :func:`default_model`."""
    return default_model().similarity(text_a, text_b)


__all__ = ["EsaModel", "DEFAULT_THRESHOLD", "default_model", "similarity"]
