"""Explicit Semantic Analysis (Gabrilovich & Markovitch, 2007).

Given a knowledge base of concept articles, each term receives a vector
of TF-IDF weights over concepts (its *interpretation vector*).  A text
is interpreted as the centroid of its terms' vectors; the semantic
similarity of two texts is the cosine of their interpretation vectors.

PPChecker uses ``Similarity(a, b) > threshold`` with ``threshold =
0.67`` (following AutoCog) to decide whether two information phrases
refer to the same thing.

The matching algorithms call ``similarity`` for every (surface,
phrase) pair of every app, and study-scale corpora repeat the same
phrases across thousands of apps.  Each model therefore memoizes its
interpretation vectors and pair similarities in bounded LRUs
(:mod:`repro.memo`), prunes pairs whose sparse vectors share no
concept (their cosine is exactly 0), and offers batch entry points
(:meth:`EsaModel.similarity_many`, :meth:`EsaModel.match_sets`,
:meth:`EsaModel.any_match`) that the detectors drive.  All fast paths
are exact: ``REPRO_NO_MEMO=1`` disables them and the differential
suite proves the output is byte-identical either way.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.memo import MISS, MemoCache, memo_enabled
from repro.nlp.tokenizer import lemmatize
from repro.semantics.knowledge import CONCEPT_ARTICLES

#: The decision threshold used throughout the paper (Section IV-A).
DEFAULT_THRESHOLD = 0.67

_STOPWORDS = {
    "the", "a", "an", "of", "to", "and", "or", "in", "on", "for",
    "with", "by", "from", "at", "as", "is", "are", "be", "was",
    "were", "will", "would", "may", "might", "can", "could", "shall",
    "should", "that", "this", "these", "those", "it", "its", "we",
    "you", "your", "our", "their", "his", "her", "my", "i", "any",
    "all", "some", "such", "other", "about", "into", "than", "then",
    "so", "if", "when", "which", "who", "whom", "what", "how", "not",
    "no", "do", "does", "did", "have", "has", "had",
}

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[-'][a-z0-9]+)*")


def _norm_key(text: str) -> str:
    """Cache key: casefold and collapse whitespace.  Tokenization is
    case-insensitive and whitespace-blind, so two texts with the same
    key always yield the same interpretation vector."""
    return " ".join(text.lower().split())


def _cosine(key_a: str, vec_a: dict[int, float],
            key_b: str, vec_b: dict[int, float]) -> float:
    """Dot product of two L2-normalized sparse vectors, clamped to
    [0, 1].  The iteration order is canonical (smaller vector first,
    ties broken by key) so the float result is independent of the
    argument order -- a prerequisite for the symmetric pair cache."""
    if (len(vec_b), key_b) < (len(vec_a), key_a):
        vec_a, vec_b = vec_b, vec_a
    dot = sum(w * vec_b.get(c, 0.0) for c, w in vec_a.items())
    return max(0.0, min(1.0, dot))


def _terms(text: str) -> list[str]:
    """Lower-case, tokenize, lemmatize, drop stopwords."""
    out = []
    for raw in _TOKEN_RE.findall(text.lower()):
        if raw in _STOPWORDS:
            continue
        lemma = lemmatize(raw)
        if lemma in _STOPWORDS or not lemma:
            continue
        out.append(lemma)
    return out


@dataclass
class EsaModel:
    """An ESA interpreter over a concept knowledge base."""

    articles: dict[str, str]
    threshold: float = DEFAULT_THRESHOLD
    _term_vectors: dict[str, dict[int, float]] = field(
        default_factory=dict, repr=False
    )
    _concepts: list[str] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        # bounded memo caches (see repro.memo); texts repeat massively
        # across apps, so both have study-scale hit rates
        self._interp_cache = MemoCache("esa_interpret")
        self._sim_cache = MemoCache("esa_similarity", max_entries=262144)
        self._concepts = sorted(self.articles)
        # term frequency per concept
        tf: dict[str, dict[int, float]] = {}
        doc_freq: dict[str, int] = {}
        for cidx, concept in enumerate(self._concepts):
            counts: dict[str, int] = {}
            for term in _terms(self.articles[concept]):
                counts[term] = counts.get(term, 0) + 1
            for term, count in counts.items():
                tf.setdefault(term, {})[cidx] = 1.0 + math.log(count)
                doc_freq[term] = doc_freq.get(term, 0) + 1
        n_docs = len(self._concepts)
        for term, vec in tf.items():
            idf = math.log((1.0 + n_docs) / (1.0 + doc_freq[term])) + 1.0
            weighted = {c: w * idf for c, w in vec.items()}
            norm = math.sqrt(sum(w * w for w in weighted.values()))
            self._term_vectors[term] = {
                c: w / norm for c, w in weighted.items()
            }

    # -- interpretation ----------------------------------------------------

    def interpret(self, text: str) -> dict[int, float]:
        """Interpretation vector of *text* (sparse, L2-normalized).

        Returns a fresh dict; the memoized vector stays private."""
        return dict(self._interp(text)[1])

    def _compute_interpret(self, text: str) -> dict[int, float]:
        acc: dict[int, float] = {}
        terms = _terms(text)
        if not terms:
            return {}
        for term in terms:
            vec = self._term_vectors.get(term)
            if vec is None:
                continue
            for cidx, weight in vec.items():
                acc[cidx] = acc.get(cidx, 0.0) + weight
        norm = math.sqrt(sum(w * w for w in acc.values()))
        if norm == 0.0:
            return {}
        return {c: w / norm for c, w in acc.items()}

    def _interp(self, text: str) -> tuple[str, dict[int, float]]:
        """(cache key, memoized vector).  The vector is shared and
        must be treated as immutable."""
        key = _norm_key(text)
        vec = self._interp_cache.get(key)
        if vec is MISS:
            vec = self._compute_interpret(text)
            self._interp_cache.put(key, vec)
        return key, vec

    def _pair_sim(self, key_a: str, vec_a: dict[int, float],
                  key_b: str, vec_b: dict[int, float]) -> float:
        if not vec_a or not vec_b:
            return 0.0
        pair = (key_a, key_b) if key_a <= key_b else (key_b, key_a)
        cached = self._sim_cache.get(pair)
        if cached is not MISS:
            return cached
        # shared-concept prune: disjoint sparse supports have an
        # exactly-zero dot product, so skipping the sum is exact
        if memo_enabled() and vec_a.keys().isdisjoint(vec_b.keys()):
            sim = 0.0
        else:
            sim = _cosine(key_a, vec_a, key_b, vec_b)
        self._sim_cache.put(pair, sim)
        return sim

    def similarity(self, text_a: str, text_b: str) -> float:
        """Cosine similarity of the two interpretation vectors in [0, 1]."""
        key_a, vec_a = self._interp(text_a)
        key_b, vec_b = self._interp(text_b)
        return self._pair_sim(key_a, vec_a, key_b, vec_b)

    def same_thing(self, text_a: str, text_b: str,
                   threshold: float | None = None) -> bool:
        """The paper's matching predicate: similarity above threshold."""
        limit = self.threshold if threshold is None else threshold
        return self.similarity(text_a, text_b) > limit

    # -- batch entry points ------------------------------------------------

    def similarity_many(self, text: str,
                        candidates: list[str]) -> list[float]:
        """``similarity(text, c)`` for every candidate, interpreting
        *text* once.  Agrees pairwise with :meth:`similarity`."""
        key, vec = self._interp(text)
        return [self._pair_sim(key, vec, *self._interp(c))
                for c in candidates]

    def any_match(self, texts_a: list[str], texts_b: list[str],
                  threshold: float | None = None) -> bool:
        """Is any (a, b) pair above the threshold?  Early-exits on the
        first hit; equals ``any(same_thing(a, b) for a for b)``."""
        limit = self.threshold if threshold is None else threshold
        interps_b = [self._interp(t) for t in texts_b]
        for text_a in texts_a:
            key_a, vec_a = self._interp(text_a)
            if not vec_a:
                continue
            for key_b, vec_b in interps_b:
                if self._pair_sim(key_a, vec_a, key_b, vec_b) > limit:
                    return True
        return False

    def match_sets(self, texts_a: list[str], texts_b: list[str],
                   threshold: float | None = None,
                   ) -> list[tuple[int, int, float]]:
        """All ``(i, j, similarity)`` with similarity above the
        threshold, ordered by ``(i, j)`` -- the order of the nested
        reference loop, so first-hit call sites stay byte-identical.

        With memoization enabled, candidates are pruned through a
        shared-concept inverted index over *texts_b*: a pair whose
        vectors share no concept has cosine exactly 0 and is never
        scored.  The pruning is exact for any ``threshold >= 0``.
        """
        limit = self.threshold if threshold is None else threshold
        interps_b = [self._interp(t) for t in texts_b]
        out: list[tuple[int, int, float]] = []
        if not memo_enabled():
            for i, text_a in enumerate(texts_a):
                for j, text_b in enumerate(texts_b):
                    sim = self.similarity(text_a, text_b)
                    if sim > limit:
                        out.append((i, j, sim))
            return out
        index: dict[int, list[int]] = {}
        for j, (_key, vec) in enumerate(interps_b):
            for concept in vec:
                index.setdefault(concept, []).append(j)
        for i, text_a in enumerate(texts_a):
            key_a, vec_a = self._interp(text_a)
            if not vec_a:
                continue
            candidates = sorted({
                j for concept in vec_a
                for j in index.get(concept, ())
            })
            for j in candidates:
                key_b, vec_b = interps_b[j]
                sim = self._pair_sim(key_a, vec_a, key_b, vec_b)
                if sim > limit:
                    out.append((i, j, sim))
        return out

    def cache_info(self) -> dict[str, dict[str, int]]:
        """Hit/miss/size counters of this model's memo caches."""
        return {
            "interpret": self._interp_cache.stats(),
            "similarity": self._sim_cache.stats(),
        }

    def top_concepts(self, text: str, k: int = 3) -> list[tuple[str, float]]:
        """The k concepts with the highest interpretation weight."""
        vec = self.interpret(text)
        ranked = sorted(vec.items(), key=lambda cw: -cw[1])[:k]
        return [(self._concepts[c], w) for c, w in ranked]


_DEFAULT: EsaModel | None = None


def default_model() -> EsaModel:
    """The process-wide ESA model over the embedded knowledge base."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = EsaModel(CONCEPT_ARTICLES)
    return _DEFAULT


def similarity(text_a: str, text_b: str) -> float:
    """Module-level convenience wrapper over :func:`default_model`."""
    return default_model().similarity(text_a, text_b)


def similarity_many(text: str, candidates: list[str]) -> list[float]:
    """Module-level convenience wrapper over :func:`default_model`."""
    return default_model().similarity_many(text, candidates)


def match_sets(texts_a: list[str], texts_b: list[str],
               threshold: float | None = None,
               ) -> list[tuple[int, int, float]]:
    """Module-level convenience wrapper over :func:`default_model`."""
    return default_model().match_sets(texts_a, texts_b, threshold)


__all__ = [
    "EsaModel",
    "DEFAULT_THRESHOLD",
    "default_model",
    "similarity",
    "similarity_many",
    "match_sets",
]
