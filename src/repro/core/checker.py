"""The PPChecker facade (Fig. 4).

Input: an app's privacy policy, description, APK, and its third-party
libs' privacy policies.  Output: an :class:`repro.core.report.AppReport`
with the incomplete / incorrect / inconsistent findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.android.apk import Apk
from repro.android.static_analysis import StaticAnalysisResult, analyze_apk
from repro.core.incomplete import (
    detect_incomplete_via_code,
    detect_incomplete_via_description,
)
from repro.core.inconsistent import detect_inconsistent
from repro.core.incorrect import (
    detect_incorrect_via_code,
    detect_incorrect_via_description,
)
from repro.core.matching import InfoMatcher
from repro.core.report import AppReport
from repro.description.autocog import AutoCog
from repro.policy.analyzer import PolicyAnalyzer
from repro.policy.model import PolicyAnalysis


@dataclass
class AppBundle:
    """Everything PPChecker needs to know about one app."""

    package: str
    apk: Apk
    policy: str
    description: str
    policy_is_html: bool = False


@dataclass
class PPChecker:
    """The complete pipeline: policy analysis, static analysis,
    description analysis, and the three detectors.

    ``lib_policy_source`` maps a detected lib id to that lib's policy
    text (None when the lib publishes no English policy); lib analyses
    are cached across apps.
    """

    lib_policy_source: Callable[[str], str | None] = lambda lib_id: None
    policy_analyzer: PolicyAnalyzer = field(default_factory=PolicyAnalyzer)
    autocog: AutoCog = field(default_factory=AutoCog)
    matcher: InfoMatcher = field(default_factory=InfoMatcher)
    use_reachability: bool = True
    use_uri_analysis: bool = True
    honor_disclaimer: bool = True
    _lib_cache: dict[str, PolicyAnalysis | None] = field(
        default_factory=dict, repr=False
    )

    # -- pipeline pieces ----------------------------------------------------

    def analyze_policy(self, bundle: AppBundle) -> PolicyAnalysis:
        return self.policy_analyzer.analyze(
            bundle.policy, html=bundle.policy_is_html
        )

    def analyze_code(self, bundle: AppBundle) -> StaticAnalysisResult:
        return analyze_apk(
            bundle.apk,
            use_reachability=self.use_reachability,
            use_uri_analysis=self.use_uri_analysis,
        )

    def _lib_policy(self, lib_id: str) -> PolicyAnalysis | None:
        if lib_id not in self._lib_cache:
            text = self.lib_policy_source(lib_id)
            self._lib_cache[lib_id] = (
                None if text is None
                else self.policy_analyzer.analyze(text)
            )
        return self._lib_cache[lib_id]

    # -- the check ----------------------------------------------------------

    def check(self, bundle: AppBundle) -> AppReport:
        """Run all three detectors over one app."""
        policy = self.analyze_policy(bundle)
        static_result = self.analyze_code(bundle)
        permissions = self.autocog.infer_permissions(bundle.description)
        # Alg. 1 considers only permissions the app actually requests
        permissions &= bundle.apk.manifest.permissions

        report = AppReport(package=bundle.package)
        report.incomplete.extend(detect_incomplete_via_description(
            policy, permissions, self.matcher,
        ))
        report.incomplete.extend(detect_incomplete_via_code(
            policy, static_result, self.matcher,
        ))
        report.incorrect.extend(detect_incorrect_via_description(
            policy, permissions, self.matcher,
        ))
        report.incorrect.extend(detect_incorrect_via_code(
            policy, static_result, self.matcher,
        ))

        lib_policies = {
            spec.lib_id: analysis
            for spec in static_result.libraries
            if (analysis := self._lib_policy(spec.lib_id)) is not None
        }
        report.inconsistent.extend(detect_inconsistent(
            policy, lib_policies, self.matcher,
            honor_disclaimer=self.honor_disclaimer,
        ))
        return report


__all__ = ["AppBundle", "PPChecker"]
