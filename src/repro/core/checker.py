"""The PPChecker facade (Fig. 4).

Input: an app's privacy policy, description, APK, and its third-party
libs' privacy policies.  Output: an :class:`repro.core.report.AppReport`
with the incomplete / incorrect / inconsistent findings.

Since the pipeline refactor, PPChecker is a thin facade over
:class:`repro.pipeline.Pipeline`: every analysis runs as a
content-addressed stage whose result is memoized in an artifact store
(in-memory by default, optionally disk-backed), and batches fan out
over a worker pool.  The facade keeps the historical call surface --
``check``, ``analyze_policy``, ``analyze_code``, ``_lib_policy`` --
so existing call sites and subclasses (e.g.
:class:`repro.core.extended.ExtendedPPChecker`) work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.android.apk import Apk
from repro.android.static_analysis import StaticAnalysisResult
from repro.core.matching import InfoMatcher
from repro.core.report import AppFailure, AppReport
from repro.description.autocog import AutoCog
from repro.pipeline.artifacts import (
    ArtifactStore,
    MemoryStore,
    PipelineStats,
)
from repro.pipeline.faults import FaultPlan
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.resilience import (
    Deadline,
    RetryPolicy,
    deadline_scope,
)
from repro.policy.analyzer import PolicyAnalyzer
from repro.policy.model import PolicyAnalysis


@dataclass
class AppBundle:
    """Everything PPChecker needs to know about one app."""

    package: str
    apk: Apk
    policy: str
    description: str
    policy_is_html: bool = False


@dataclass
class PPChecker:
    """The complete pipeline: policy analysis, static analysis,
    description analysis, and the three detectors.

    ``lib_policy_source`` maps a detected lib id to that lib's policy
    text (None when the lib publishes no English policy); lib analyses
    are cached in the artifact store, shared across apps *and* across
    every checker handed the same ``artifact_store``.

    Pass ``artifact_store=build_store(cache_dir=...)`` for a
    disk-backed cache that survives the process, or a prebuilt
    ``pipeline`` to share stages wholesale.
    """

    lib_policy_source: Callable[[str], str | None] = lambda lib_id: None
    policy_analyzer: PolicyAnalyzer = field(default_factory=PolicyAnalyzer)
    autocog: AutoCog = field(default_factory=AutoCog)
    matcher: InfoMatcher = field(default_factory=InfoMatcher)
    use_reachability: bool = True
    use_uri_analysis: bool = True
    honor_disclaimer: bool = True
    artifact_store: ArtifactStore | None = None
    #: per-stage timeouts and bounded retries (defaults: no timeout,
    #: no retries -- historical behaviour)
    retry_policy: RetryPolicy | None = None
    #: fault-injection hook for tests and benchmarks
    fault_plan: FaultPlan | None = None
    #: per-app wall-clock budget (seconds): stage timeouts, retries,
    #: and backoff sleeps all derive from the *remaining* budget, and
    #: an exhausted budget fails the check with a deadline error
    #: instead of burning more pipeline work (None = unbounded)
    deadline_seconds: float | None = None
    pipeline: Pipeline | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.pipeline is None:
            self.pipeline = Pipeline(
                lib_policy_source=self.lib_policy_source,
                policy_analyzer=self.policy_analyzer,
                autocog=self.autocog,
                matcher=self.matcher,
                use_reachability=self.use_reachability,
                use_uri_analysis=self.use_uri_analysis,
                honor_disclaimer=self.honor_disclaimer,
                # explicit None check: an empty MemoryStore is falsy
                store=(self.artifact_store
                       if self.artifact_store is not None
                       else MemoryStore()),
                resilience=(self.retry_policy
                            if self.retry_policy is not None
                            else RetryPolicy()),
                faults=self.fault_plan,
            )

    @property
    def stats(self) -> PipelineStats:
        """Per-stage wall time and cache-hit counters."""
        return self.pipeline.stats

    # -- pipeline pieces ----------------------------------------------------

    def analyze_policy(self, bundle: AppBundle) -> PolicyAnalysis:
        return self.pipeline.policy_analysis(bundle)

    def analyze_code(self, bundle: AppBundle) -> StaticAnalysisResult:
        return self.pipeline.static_analysis(bundle)

    def infer_permissions(self, bundle: AppBundle) -> set[str]:
        """Info_desc gated on the manifest (Alg. 1 considers only
        permissions the app actually requests)."""
        return (self.pipeline.description_permissions(bundle)
                & bundle.apk.manifest.permissions)

    def _lib_policy(self, lib_id: str) -> PolicyAnalysis | None:
        return self.pipeline.lib_policy_analysis(lib_id)

    # -- the check ----------------------------------------------------------

    def check(self, bundle: AppBundle) -> AppReport:
        """Run all three detectors over one app.  When
        ``deadline_seconds`` is set (and no ambient deadline is
        already in scope -- the serving layer opens its own per-job
        scope), the whole check runs under a fresh per-app
        deadline."""
        deadline = (Deadline.after(self.deadline_seconds)
                    if self.deadline_seconds is not None else None)
        with deadline_scope(deadline):
            policy = self.analyze_policy(bundle)
            static_result = self.analyze_code(bundle)
            permissions = self.infer_permissions(bundle)
            return self.pipeline.detect(bundle, policy, static_result,
                                        permissions)

    def check_batch(self, bundles: list[AppBundle],
                    workers: int = 1,
                    on_error: str = "raise",
                    on_outcome: Callable[
                        [AppBundle, AppReport | AppFailure],
                        None] | None = None,
                    ) -> list[AppReport | AppFailure]:
        """``check`` over many apps, fanned out over *workers*
        threads; results come back in input order.  ``workers=1`` is
        a plain serial loop.  ``on_error="quarantine"`` isolates
        per-app failures as :class:`~repro.core.report.AppFailure`
        slots instead of aborting the batch.  ``on_outcome`` observes
        each finished app as it completes (checkpoint hook; must be
        thread-safe under ``workers > 1``)."""
        return self.pipeline.check_batch(bundles, workers=workers,
                                         check=self.check,
                                         on_error=on_error,
                                         on_outcome=on_outcome)


__all__ = ["AppBundle", "PPChecker"]
