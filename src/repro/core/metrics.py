"""Evaluation metrics with uncertainty.

The paper reports point estimates (precision/recall/F1 in Table IV);
this module adds the statistical machinery a careful replication
wants: generic confusion-matrix metrics and bootstrap confidence
intervals over per-app outcomes, so a reader can judge whether a
reproduction's 91.1% recall is consistent with the paper's 91.7%.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Confusion:
    """A binary confusion matrix."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    @property
    def precision(self) -> float:
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fp + self.fn + self.tn
        return (self.tp + self.tn) / total if total else 0.0

    def __add__(self, other: "Confusion") -> "Confusion":
        return Confusion(self.tp + other.tp, self.fp + other.fp,
                         self.fn + other.fn, self.tn + other.tn)


def confusion_from_outcomes(
    outcomes: list[tuple[bool, bool]]
) -> Confusion:
    """Build a confusion matrix from (detected, truth) pairs."""
    tp = fp = fn = tn = 0
    for detected, truth in outcomes:
        if detected and truth:
            tp += 1
        elif detected and not truth:
            fp += 1
        elif not detected and truth:
            fn += 1
        else:
            tn += 1
    return Confusion(tp, fp, fn, tn)


@dataclass(frozen=True)
class Interval:
    """A bootstrap confidence interval for one metric."""

    point: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.point:.3f} "
                f"[{self.low:.3f}, {self.high:.3f}]")


def bootstrap_interval(
    outcomes: list[tuple[bool, bool]],
    metric: str = "precision",
    confidence: float = 0.95,
    samples: int = 2000,
    seed: int = 0,
) -> Interval:
    """Percentile-bootstrap CI for precision/recall/f1/accuracy."""
    if not outcomes:
        return Interval(0.0, 0.0, 0.0, confidence)
    rng = random.Random(seed)
    point = getattr(confusion_from_outcomes(outcomes), metric)
    values = []
    n = len(outcomes)
    for _ in range(samples):
        resample = [outcomes[rng.randrange(n)] for _ in range(n)]
        values.append(
            getattr(confusion_from_outcomes(resample), metric)
        )
    values.sort()
    alpha = (1.0 - confidence) / 2.0
    low = values[max(0, math.floor(alpha * samples) - 1)]
    high = values[min(samples - 1, math.ceil((1 - alpha) * samples))]
    return Interval(point=point, low=low, high=high,
                    confidence=confidence)


def wilson_interval(successes: int, total: int,
                    confidence: float = 0.95) -> Interval:
    """Wilson score interval for a proportion (e.g. the 23.6%)."""
    if total == 0:
        return Interval(0.0, 0.0, 0.0, confidence)
    z = {0.90: 1.645, 0.95: 1.96, 0.99: 2.576}.get(confidence, 1.96)
    p = successes / total
    denom = 1 + z * z / total
    center = (p + z * z / (2 * total)) / denom
    margin = z * math.sqrt(
        p * (1 - p) / total + z * z / (4 * total * total)
    ) / denom
    return Interval(point=p, low=max(0.0, center - margin),
                    high=min(1.0, center + margin),
                    confidence=confidence)


__all__ = [
    "Confusion",
    "confusion_from_outcomes",
    "Interval",
    "bootstrap_interval",
    "wilson_interval",
]
