"""Versioning of the JSON payloads PPChecker emits.

Every machine-readable surface (``batch-check --json``, ``study
--json``, and the REST responses of :mod:`repro.service`) stamps its
payload with ``schema_version`` so downstream consumers can detect
format drift instead of silently misparsing.  Bump the constant
whenever a key is renamed, removed, or changes meaning; purely
additive keys do not require a bump.
"""

from __future__ import annotations

from typing import Any

#: current payload schema (documented in docs/API.md)
SCHEMA_VERSION = 1


def versioned(payload: dict[str, Any]) -> dict[str, Any]:
    """Stamp *payload* with the current schema version, in place."""
    payload["schema_version"] = SCHEMA_VERSION
    return payload


def validate_versioned(payload: Any, source: str = "payload") -> None:
    """Raise ``ValueError`` unless *payload* is a dict stamped with
    the current schema version.

    The one validator every versioned surface shares: the CLI/service
    JSON payloads and the ``BENCH_*.json`` benchmark emitters
    (pipeline, service, nlp) are all checked against it in the unit
    suite, so a benchmark file can never silently drift from the
    payload contract.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"{source}: expected a JSON object, "
                         f"got {type(payload).__name__}")
    version = payload.get("schema_version")
    if version is None:
        raise ValueError(f"{source}: missing schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"{source}: schema_version {version!r} != "
                         f"expected {SCHEMA_VERSION}")


__all__ = ["SCHEMA_VERSION", "versioned", "validate_versioned"]
