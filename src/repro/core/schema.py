"""Versioning of the JSON payloads PPChecker emits.

Every machine-readable surface (``batch-check --json``, ``study
--json``, and the REST responses of :mod:`repro.service`) stamps its
payload with ``schema_version`` so downstream consumers can detect
format drift instead of silently misparsing.  Bump the constant
whenever a key is renamed, removed, or changes meaning; purely
additive keys do not require a bump.
"""

from __future__ import annotations

from typing import Any

#: current payload schema (documented in docs/API.md)
SCHEMA_VERSION = 1


def versioned(payload: dict[str, Any]) -> dict[str, Any]:
    """Stamp *payload* with the current schema version, in place."""
    payload["schema_version"] = SCHEMA_VERSION
    return payload


__all__ = ["SCHEMA_VERSION", "versioned"]
