"""Market screening: rank questionable apps for regulators.

The paper's introduction motivates PPChecker for "app market owners
and organizations like FTC to identify questionable apps."  This
module turns per-app reports into a screening worklist:

- a severity score per app (incorrect > inconsistent > incomplete,
  retention-backed findings weigh extra -- the FTC fined Path for
  undisclosed *retention*),
- a ranked list with the evidence a reviewer needs,
- CSV/JSON export.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field

from repro.core.report import AppReport

#: base severity per problem class.
WEIGHTS = {
    "incorrect": 10.0,
    "inconsistent": 5.0,
    "incomplete": 2.0,
}
#: extra weight when the finding involves retained information.
RETENTION_BONUS = 3.0
#: extra weight per additional finding of the same class.
PER_FINDING = 0.5


def severity(report: AppReport) -> float:
    """Severity score of one app's report (0 for a clean app)."""
    score = 0.0
    if report.incorrect:
        score += WEIGHTS["incorrect"]
        score += PER_FINDING * (len(report.incorrect) - 1)
        if any(f.kind == "retain" for f in report.incorrect):
            score += RETENTION_BONUS
    if report.inconsistent:
        score += WEIGHTS["inconsistent"]
        score += PER_FINDING * (len(report.inconsistent) - 1)
    if report.incomplete:
        score += WEIGHTS["incomplete"]
        score += PER_FINDING * (len(report.incomplete) - 1)
        if any(f.retained for f in report.incomplete):
            score += RETENTION_BONUS
    return score


@dataclass(frozen=True)
class ScreeningEntry:
    package: str
    score: float
    kinds: tuple[str, ...]
    finding_count: int
    headline: str


@dataclass
class ScreeningReport:
    """A ranked worklist over a set of app reports."""

    entries: list[ScreeningEntry] = field(default_factory=list)

    def top(self, k: int) -> list[ScreeningEntry]:
        return self.entries[:k]

    def to_json(self) -> str:
        return json.dumps(
            [
                {
                    "package": entry.package,
                    "score": entry.score,
                    "kinds": list(entry.kinds),
                    "findings": entry.finding_count,
                    "headline": entry.headline,
                }
                for entry in self.entries
            ],
            indent=2,
        )

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["package", "score", "kinds", "findings",
                         "headline"])
        for entry in self.entries:
            writer.writerow([
                entry.package, f"{entry.score:.1f}",
                "|".join(entry.kinds), entry.finding_count,
                entry.headline,
            ])
        return buffer.getvalue()


def _headline(report: AppReport) -> str:
    if report.incorrect:
        finding = report.incorrect[0]
        return (f"policy denies {finding.kind} of '{finding.info}' "
                "but the app does it")
    if report.inconsistent:
        finding = report.inconsistent[0]
        return (f"policy conflicts with lib '{finding.lib_id}' over "
                f"'{finding.lib_resource}'")
    if report.incomplete:
        finding = report.incomplete[0]
        extra = " (retained)" if finding.retained else ""
        return f"policy never mentions '{finding.info}'{extra}"
    return "clean"


def screen(reports: dict[str, AppReport] | list[AppReport],
           min_score: float = 0.0) -> ScreeningReport:
    """Rank apps by severity, most questionable first."""
    if isinstance(reports, dict):
        items = list(reports.values())
    else:
        items = list(reports)

    entries = []
    for report in items:
        if not report.has_problem:
            continue
        score = severity(report)
        if score < min_score:
            continue
        entries.append(ScreeningEntry(
            package=report.package,
            score=score,
            kinds=tuple(sorted(report.problem_kinds())),
            finding_count=(len(report.incomplete) + len(report.incorrect)
                           + len(report.inconsistent)),
            headline=_headline(report),
        ))
    entries.sort(key=lambda e: (-e.score, e.package))
    return ScreeningReport(entries=entries)


__all__ = [
    "WEIGHTS",
    "RETENTION_BONUS",
    "severity",
    "ScreeningEntry",
    "ScreeningReport",
    "screen",
]
