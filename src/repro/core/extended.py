"""The extended PPChecker: the paper's future work, assembled.

Combines the three Section-VI extensions into one configuration:

1. verb-synonym patterns (recovers the "display" class of
   inconsistency false negatives),
2. constraint modelling (consent-scoped denials stop tripping the
   incorrect detector; third-party-attributed statements are dropped),
3. optional dynamic verification (a code-path incomplete finding is
   kept only if a concrete run can also observe the behaviour --
   killing static over-approximation false positives from dead code).

``make_extended_checker()`` returns a drop-in
:class:`repro.core.checker.PPChecker`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.checker import AppBundle, PPChecker
from repro.core.report import AppReport
from repro.policy.analyzer import PolicyAnalyzer
from repro.policy.constraints import adjust_analysis
from repro.policy.model import PolicyAnalysis
from repro.policy.synonyms import expanded_pattern_set


@dataclass
class ExtendedPPChecker(PPChecker):
    """PPChecker with the Discussion extensions switched on."""

    use_constraints: bool = True
    verify_dynamically: bool = False

    def analyze_policy(self, bundle: AppBundle) -> PolicyAnalysis:
        analysis = super().analyze_policy(bundle)
        if self.use_constraints:
            analysis = adjust_analysis(analysis)
        return analysis

    def check(self, bundle: AppBundle) -> AppReport:
        report = super().check(bundle)
        if not self.verify_dynamically:
            return report
        code_findings = [
            f for f in report.incomplete if f.source == "code"
        ]
        if not code_findings:
            return report
        from repro.android.dynamic import DynamicAnalyzer
        observed = DynamicAnalyzer(bundle.apk).run()
        seen = observed.collected_infos() | observed.retained_infos()
        report.incomplete = [
            f for f in report.incomplete
            if f.source != "code" or f.info in seen
        ]
        return report


def make_extended_checker(
    lib_policy_source: Callable[[str], str | None] = lambda _lib: None,
    verify_dynamically: bool = False,
) -> ExtendedPPChecker:
    """An extended checker with synonym patterns pre-wired."""
    return ExtendedPPChecker(
        lib_policy_source=lib_policy_source,
        policy_analyzer=PolicyAnalyzer(patterns=expanded_pattern_set()),
        verify_dynamically=verify_dynamically,
    )


__all__ = ["ExtendedPPChecker", "make_extended_checker"]
