"""PPChecker core: the problem-identification module (Section IV).

- :mod:`repro.core.report`       finding / report data types
- :mod:`repro.core.matching`     information-vs-phrase matching via ESA
- :mod:`repro.core.incomplete`   Alg. 1 (description) and Alg. 2 (code)
- :mod:`repro.core.incorrect`    Alg. 3 (description) and Alg. 4 (code)
- :mod:`repro.core.inconsistent` Alg. 5 (app policy vs. lib policies)
- :mod:`repro.core.checker`      the PPChecker facade
- :mod:`repro.core.study`        runs the 1,197-app study and aggregates
  the numbers behind every table and figure
"""

from repro.core.report import (
    AppReport,
    IncompleteFinding,
    InconsistentFinding,
    IncorrectFinding,
)
from repro.core.checker import AppBundle, PPChecker
from repro.core.extended import ExtendedPPChecker, make_extended_checker

__all__ = [
    "AppReport",
    "IncompleteFinding",
    "IncorrectFinding",
    "InconsistentFinding",
    "AppBundle",
    "PPChecker",
    "ExtendedPPChecker",
    "make_extended_checker",
]
