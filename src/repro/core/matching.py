"""Information matching: code/description info vs. policy phrases.

The paper's ``Similarity(Info, PPInfo) > threshold`` predicate (Alg. 1
line 5 and friends) with ESA and the 0.67 threshold.  A fast exact
alias lookup short-circuits the ESA computation for the common case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.description.permission_map import INFO_SURFACE
from repro.semantics.esa import DEFAULT_THRESHOLD, EsaModel, default_model
from repro.semantics.resources import InfoType, normalize_resource


@dataclass
class InfoMatcher:
    """Decides whether a policy phrase refers to a given information."""

    esa: EsaModel | None = None
    threshold: float = DEFAULT_THRESHOLD

    def __post_init__(self) -> None:
        if self.esa is None:
            self.esa = default_model()

    def fingerprint(self) -> str:
        """Content hash of the matcher configuration; part of the
        ``detect`` cache key.  Custom ESA models may expose their own
        ``fingerprint()``; otherwise the type name stands in."""
        from repro.hashing import fingerprint

        esa_fp = getattr(self.esa, "fingerprint", None)
        return fingerprint({
            "threshold": self.threshold,
            "esa": esa_fp() if callable(esa_fp)
            else type(self.esa).__name__,
        })

    def phrase_matches(self, info: InfoType, phrase: str) -> bool:
        """Similarity(info, phrase) > threshold."""
        if normalize_resource(phrase) is info:
            return True
        for surface in INFO_SURFACE.get(info, (info.value,)):
            if self.esa.similarity(surface, phrase) > self.threshold:
                return True
        return False

    def covered(self, info: InfoType, phrases: set[str]) -> bool:
        """Is *info* mentioned by any of the policy *phrases*?"""
        return any(self.phrase_matches(info, phrase) for phrase in phrases)

    def phrases_match(self, phrase_a: str, phrase_b: str) -> bool:
        """Resource-to-resource matching (Alg. 5 line 11)."""
        info_a = normalize_resource(phrase_a)
        info_b = normalize_resource(phrase_b)
        if info_a is not None and info_a is info_b:
            return True
        return self.esa.similarity(phrase_a, phrase_b) > self.threshold


__all__ = ["InfoMatcher"]
