"""Information matching: code/description info vs. policy phrases.

The paper's ``Similarity(Info, PPInfo) > threshold`` predicate (Alg. 1
line 5 and friends) with ESA and the 0.67 threshold.  A fast exact
alias lookup short-circuits the ESA computation for the common case.

The detectors drive the per-policy batch forms
(:meth:`InfoMatcher.covered_many`, :meth:`InfoMatcher.first_hits`,
:meth:`InfoMatcher.first_match_pair`): every information type of one
app probes a single interpreted-and-indexed view of the policy's
phrases (one inverted-index pass per policy instead of one ESA sweep
per pair), then each decision replays in the reference nested-loop
order so the output stays byte-identical to the scalar plane.
"""

from __future__ import annotations

from typing import Iterable

from dataclasses import dataclass

from repro.description.permission_map import INFO_SURFACE
from repro.semantics.esa import DEFAULT_THRESHOLD, EsaModel, default_model
from repro.semantics.resources import InfoType, normalize_resource


@dataclass
class InfoMatcher:
    """Decides whether a policy phrase refers to a given information."""

    esa: EsaModel | None = None
    threshold: float = DEFAULT_THRESHOLD

    def __post_init__(self) -> None:
        if self.esa is None:
            self.esa = default_model()

    def fingerprint(self) -> str:
        """Content hash of the matcher configuration; part of the
        ``detect`` cache key.  Custom ESA models may expose their own
        ``fingerprint()``; otherwise the type name stands in."""
        from repro.hashing import fingerprint

        esa_fp = getattr(self.esa, "fingerprint", None)
        return fingerprint({
            "threshold": self.threshold,
            "esa": esa_fp() if callable(esa_fp)
            else type(self.esa).__name__,
        })

    def phrase_matches(self, info: InfoType, phrase: str) -> bool:
        """Similarity(info, phrase) > threshold."""
        if normalize_resource(phrase) is info:
            return True
        surfaces = list(INFO_SURFACE.get(info, (info.value,)))
        return self.esa.any_match(surfaces, [phrase], self.threshold)

    def covered(self, info: InfoType, phrases: set[str]) -> bool:
        """Is *info* mentioned by any of the policy *phrases*?

        Batch form of ``any(phrase_matches(info, p) for p in
        phrases)``: the exact alias lookup runs first, then every
        (surface, phrase) pair goes through the ESA batch matcher with
        shared-concept pruning.
        """
        if any(normalize_resource(phrase) is info for phrase in phrases):
            return True
        surfaces = list(INFO_SURFACE.get(info, (info.value,)))
        return self.esa.any_match(surfaces, list(phrases),
                                  self.threshold)

    def covered_many(self, infos: Iterable[InfoType],
                     phrases: Iterable[str]) -> dict[InfoType, bool]:
        """:meth:`covered` for many information types against one
        policy's phrase set, interpreting and indexing the phrases
        once.  ``covered_many(infos, ps)[info] == covered(info, ps)``
        for every info."""
        phrase_list = list(phrases)
        alias_hits = {normalize_resource(p) for p in phrase_list}
        ordered = list(dict.fromkeys(infos))
        pending = [info for info in ordered if info not in alias_hits]
        groups = [list(INFO_SURFACE.get(info, (info.value,)))
                  for info in pending]
        esa_hits = self.esa.group_hits(groups, phrase_list,
                                       self.threshold)
        out = {info: True for info in ordered if info in alias_hits}
        for info, hits in zip(pending, esa_hits):
            out[info] = bool(hits)
        return out

    def first_hits(self, infos: Iterable[InfoType],
                   phrases: list[str]) -> list[int | None]:
        """For each info, the index of the first phrase (list order)
        for which :meth:`phrase_matches` holds, or None -- the
        batched form of the Alg. 3/4 denial scan.  ESA pairs score
        through one shared inverted-index pass; the first-hit
        decision replays the reference loop (exact alias check, then
        the ESA verdict) per phrase in order."""
        ordered = list(infos)
        alias_infos = [normalize_resource(p) for p in phrases]
        groups = [list(INFO_SURFACE.get(info, (info.value,)))
                  for info in ordered]
        esa_hits = self.esa.group_hits(groups, phrases, self.threshold)
        out: list[int | None] = []
        for info, hits in zip(ordered, esa_hits):
            first: int | None = None
            for j in range(len(phrases)):
                if alias_infos[j] is info or j in hits:
                    first = j
                    break
            out.append(first)
        return out

    def phrases_match(self, phrase_a: str, phrase_b: str) -> bool:
        """Resource-to-resource matching (Alg. 5 line 11)."""
        info_a = normalize_resource(phrase_a)
        info_b = normalize_resource(phrase_b)
        if info_a is not None and info_a is info_b:
            return True
        return self.esa.similarity(phrase_a, phrase_b) > self.threshold

    def first_match_pair(
        self, phrases_a: tuple[str, ...] | list[str],
        phrases_b: tuple[str, ...] | list[str],
    ) -> tuple[str, str] | None:
        """The first ``(a, b)`` pair (nested-loop order: *a* outer)
        for which :meth:`phrases_match` holds, or None.

        Batch form of the Alg. 5 resource scan: ESA pairs are scored
        through :meth:`~repro.semantics.esa.EsaModel.match_sets`
        (inverted-index pruned), then the decision replays in the
        reference order so the selected pair is byte-identical to the
        nested loop's.
        """
        infos_a = [normalize_resource(p) for p in phrases_a]
        infos_b = [normalize_resource(p) for p in phrases_b]
        esa_hits = {
            (i, j) for i, j, _sim in self.esa.match_sets(
                list(phrases_a), list(phrases_b), self.threshold)
        }
        for i, phrase_a in enumerate(phrases_a):
            for j, phrase_b in enumerate(phrases_b):
                if infos_a[i] is not None and infos_a[i] is infos_b[j]:
                    return phrase_a, phrase_b
                if (i, j) in esa_hits:
                    return phrase_a, phrase_b
        return None


__all__ = ["InfoMatcher"]
