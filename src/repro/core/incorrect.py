"""Incorrect-privacy-policy detection (Section IV-B, Alg. 3 and 4).

A policy is incorrect when it *denies* a behaviour the app performs:
the Not* resource sets intersect the description-implied information
(Alg. 3) or the code-observed collection/retention (Alg. 4).
"""

from __future__ import annotations

from repro.android.static_analysis import StaticAnalysisResult
from repro.core.matching import InfoMatcher
from repro.core.report import IncorrectFinding
from repro.description.permission_map import info_for_permission
from repro.policy.model import PolicyAnalysis, Statement
from repro.semantics.resources import InfoType


def detect_incorrect_via_description(
    policy: PolicyAnalysis,
    description_permissions: set[str],
    matcher: InfoMatcher,
) -> list[IncorrectFinding]:
    """Alg. 3: Info_desc vs. the policy's negative sets.

    The per-info denial scan (statements outer, resources inner,
    first hit wins) is batched through one interpreted pass over the
    policy's negative resources; the flat first-hit index replays the
    reference nested-loop order.
    """
    desc_infos: set[InfoType] = set()
    for permission in description_permissions:
        desc_infos.update(info_for_permission(permission))
    ordered = sorted(desc_infos, key=lambda i: i.value)
    flat: list[tuple[Statement, str]] = [
        (statement, resource)
        for statement in policy.negative_statements()
        for resource in statement.resources
    ]
    firsts = matcher.first_hits(ordered, [res for _, res in flat])
    findings: list[IncorrectFinding] = []
    for info, first in zip(ordered, firsts):
        if first is None:
            continue
        statement, _res = flat[first]
        findings.append(IncorrectFinding(
            info=info,
            source="description",
            denial_sentence=statement.sentence,
            kind=statement.category.value,
        ))
    return findings


def detect_incorrect_via_code(
    policy: PolicyAnalysis,
    static_result: StaticAnalysisResult,
    matcher: InfoMatcher,
) -> list[IncorrectFinding]:
    """Alg. 4: NotCollect vs Collect_code, NotRetain vs Retain_code."""
    findings: list[IncorrectFinding] = []

    def check(code_infos: set[InfoType], denial_phrases: set[str],
              kind: str) -> None:
        # list() preserves the set's iteration order, so the batched
        # first hit selects the same phrase the nested loop would
        ordered = sorted(code_infos, key=lambda i: i.value)
        phrase_list = list(denial_phrases)
        firsts = matcher.first_hits(ordered, phrase_list)
        for info, first in zip(ordered, firsts):
            if first is None:
                continue
            phrase = phrase_list[first]
            sentence = _sentence_with_phrase(policy, phrase, kind)
            findings.append(IncorrectFinding(
                info=info,
                source="code",
                denial_sentence=sentence,
                kind=kind,
                evidence=tuple(static_result.evidence_for(info)),
            ))

    # NotCollect / NotUse / NotDisclose against observed collection
    denial_collect = (
        policy.not_collected | policy.not_used | policy.not_disclosed
    )
    check(static_result.collected_infos(), denial_collect, "collect")
    # NotRetain against observed retention paths
    check(static_result.retained_infos(), policy.not_retained, "retain")
    return findings


def _sentence_with_phrase(policy: PolicyAnalysis, phrase: str,
                          kind: str) -> str:
    for statement in policy.negative_statements():
        if phrase in statement.resources:
            return statement.sentence
    return ""


__all__ = ["detect_incorrect_via_description", "detect_incorrect_via_code"]
