"""Incorrect-privacy-policy detection (Section IV-B, Alg. 3 and 4).

A policy is incorrect when it *denies* a behaviour the app performs:
the Not* resource sets intersect the description-implied information
(Alg. 3) or the code-observed collection/retention (Alg. 4).
"""

from __future__ import annotations

from repro.android.static_analysis import StaticAnalysisResult
from repro.core.matching import InfoMatcher
from repro.core.report import IncorrectFinding
from repro.description.permission_map import info_for_permission
from repro.policy.model import PolicyAnalysis, Statement
from repro.semantics.resources import InfoType


def _denial_sentence(
    policy: PolicyAnalysis, info: InfoType, matcher: InfoMatcher
) -> tuple[Statement | None, str]:
    for statement in policy.negative_statements():
        for resource in statement.resources:
            if matcher.phrase_matches(info, resource):
                return statement, resource
    return None, ""


def detect_incorrect_via_description(
    policy: PolicyAnalysis,
    description_permissions: set[str],
    matcher: InfoMatcher,
) -> list[IncorrectFinding]:
    """Alg. 3: Info_desc vs. the policy's negative sets."""
    findings: list[IncorrectFinding] = []
    desc_infos: set[InfoType] = set()
    for permission in description_permissions:
        desc_infos.update(info_for_permission(permission))
    for info in sorted(desc_infos, key=lambda i: i.value):
        statement, _res = _denial_sentence(policy, info, matcher)
        if statement is None:
            continue
        findings.append(IncorrectFinding(
            info=info,
            source="description",
            denial_sentence=statement.sentence,
            kind=statement.category.value,
        ))
    return findings


def detect_incorrect_via_code(
    policy: PolicyAnalysis,
    static_result: StaticAnalysisResult,
    matcher: InfoMatcher,
) -> list[IncorrectFinding]:
    """Alg. 4: NotCollect vs Collect_code, NotRetain vs Retain_code."""
    findings: list[IncorrectFinding] = []

    def check(code_infos: set[InfoType], denial_phrases: set[str],
              kind: str) -> None:
        for info in sorted(code_infos, key=lambda i: i.value):
            for phrase in denial_phrases:
                if matcher.phrase_matches(info, phrase):
                    sentence = _sentence_with_phrase(policy, phrase, kind)
                    findings.append(IncorrectFinding(
                        info=info,
                        source="code",
                        denial_sentence=sentence,
                        kind=kind,
                        evidence=tuple(static_result.evidence_for(info)),
                    ))
                    break

    # NotCollect / NotUse / NotDisclose against observed collection
    denial_collect = (
        policy.not_collected | policy.not_used | policy.not_disclosed
    )
    check(static_result.collected_infos(), denial_collect, "collect")
    # NotRetain against observed retention paths
    check(static_result.retained_infos(), policy.not_retained, "retain")
    return findings


def _sentence_with_phrase(policy: PolicyAnalysis, phrase: str,
                          kind: str) -> str:
    for statement in policy.negative_statements():
        if phrase in statement.resources:
            return statement.sentence
    return ""


__all__ = ["detect_incorrect_via_description", "detect_incorrect_via_code"]
