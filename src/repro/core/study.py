"""The 1,197-app study (Section V): run PPChecker over the corpus and
aggregate the numbers behind every table and figure.

``run_study`` produces a :class:`StudyResult` exposing:

- Table III: permission -> count of description-incomplete apps,
- Fig. 13: distribution of missed information (code path),
- Section V-D: incorrect-policy counts,
- Table IV: inconsistency TP/FP/precision/recall/F1 per sentence row,
- Section V-F: the summary (apps with at least one problem).

Ground-truth labels come from the corpus plans, so precision and
recall are exact rather than sampled.
"""

from __future__ import annotations

import resource
import time
from collections import Counter, deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol

from repro.core.checker import PPChecker
from repro.core.report import AppFailure, AppReport
from repro.corpus.appstore import AppStore, CorpusSpec
from repro.corpus.plans import AppPlan
from repro.pipeline.artifacts import PipelineStats
from repro.policy.verbs import VerbCategory
from repro.semantics.resources import InfoType


@dataclass
class RowMetrics:
    """One Table IV row."""

    tp: int = 0
    fp: int = 0
    fn: int = 0

    @property
    def flagged(self) -> int:
        return self.tp + self.fp

    @property
    def precision(self) -> float:
        return self.tp / self.flagged if self.flagged else 0.0

    @property
    def recall(self) -> float:
        actual = self.tp + self.fn
        return self.tp / actual if actual else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0


@dataclass
class StudyResult:
    """Everything the benches and EXPERIMENTS.md report."""

    n_apps: int
    reports: dict[str, AppReport] = field(default_factory=dict)
    plans: dict[str, AppPlan] = field(default_factory=dict)
    #: apps the pipeline could not check (degraded mode): package ->
    #: the structured failure record; never counted in the tables.
    failures: dict[str, AppFailure] = field(default_factory=dict)
    #: per-stage wall time / cache-hit counters of the run (None for
    #: hand-assembled results); excluded from :meth:`to_dict` so table
    #: exports stay stable across timing noise.
    stats: PipelineStats | None = field(default=None, repr=False,
                                        compare=False)
    #: run telemetry (``peak_rss_kb``, ``apps_per_sec``, ...); like
    #: ``stats`` it is timing noise, so it never enters
    #: :meth:`to_dict` or equality.
    telemetry: dict[str, float | int] | None = field(
        default=None, repr=False, compare=False)

    # -- incomplete via description (Table III) ---------------------------

    def incomplete_desc_apps(self) -> set[str]:
        return {
            pkg for pkg, r in self.reports.items()
            if r.incomplete_via("description")
        }

    def table3(self) -> dict[str, int]:
        """permission -> number of flagged apps."""
        counts: Counter[str] = Counter()
        for report in self.reports.values():
            for permission in {
                f.permission for f in report.incomplete_via("description")
            }:
                counts[permission] += 1
        return dict(counts)

    # -- incomplete via code (Fig. 13) --------------------------------------

    def incomplete_code_apps(self) -> set[str]:
        return {
            pkg for pkg, r in self.reports.items()
            if r.incomplete_via("code")
        }

    def incomplete_code_confusion(self) -> tuple[int, int]:
        """(true positives, false positives) against ground truth."""
        tp = fp = 0
        for pkg in self.incomplete_code_apps():
            if self.plans[pkg].gt_incomplete_code:
                tp += 1
            else:
                fp += 1
        return tp, fp

    def fig13(self) -> tuple[Counter[InfoType], int]:
        """(missed-info distribution, retained records), TP apps only."""
        counts: Counter[InfoType] = Counter()
        retained = 0
        for pkg in self.incomplete_code_apps():
            if not self.plans[pkg].gt_incomplete_code:
                continue
            for finding in self.reports[pkg].incomplete_via("code"):
                counts[finding.info] += 1
                if finding.retained:
                    retained += 1
        return counts, retained

    # -- incorrect (Section V-D) -----------------------------------------------

    def incorrect_apps(self, source: str | None = None) -> set[str]:
        return {
            pkg for pkg, r in self.reports.items()
            if (r.incorrect if source is None else r.incorrect_via(source))
        }

    def incorrect_confusion(self) -> tuple[int, int]:
        tp = fp = 0
        for pkg in self.incorrect_apps():
            if self.plans[pkg].gt_incorrect:
                tp += 1
            else:
                fp += 1
        return tp, fp

    # -- inconsistent (Table IV) --------------------------------------------------

    def _row_membership(self, report: AppReport) -> tuple[bool, bool]:
        cur = any(
            f.category is not VerbCategory.DISCLOSE
            for f in report.inconsistent
        )
        disclose = any(
            f.category is VerbCategory.DISCLOSE
            for f in report.inconsistent
        )
        return cur, disclose

    def table4(self) -> dict[str, RowMetrics]:
        rows = {"collect_use_retain": RowMetrics(),
                "disclose": RowMetrics()}
        for pkg, report in self.reports.items():
            plan = self.plans[pkg]
            det_cur, det_d = self._row_membership(report)
            for row, detected, truth in (
                ("collect_use_retain", det_cur, plan.gt_inconsistent_cur),
                ("disclose", det_d, plan.gt_inconsistent_d),
            ):
                metrics = rows[row]
                if detected and truth:
                    metrics.tp += 1
                elif detected and not truth:
                    metrics.fp += 1
                elif not detected and truth:
                    metrics.fn += 1
        return rows

    def inconsistent_true_apps(self) -> set[str]:
        """Detected AND manually-verified inconsistent apps (the 75)."""
        out = set()
        for pkg, report in self.reports.items():
            if not report.inconsistent:
                continue
            plan = self.plans[pkg]
            det_cur, det_d = self._row_membership(report)
            if (det_cur and plan.gt_inconsistent_cur) or (
                det_d and plan.gt_inconsistent_d
            ):
                out.add(pkg)
        return out

    # -- summary (Section V-F) ---------------------------------------------------

    def summary(self) -> dict[str, int | float]:
        incomplete_tp = {
            pkg for pkg in self.incomplete_desc_apps()
            if self.plans[pkg].gt_incomplete_desc
        } | {
            pkg for pkg in self.incomplete_code_apps()
            if self.plans[pkg].gt_incomplete_code
        }
        incorrect_tp = {
            pkg for pkg in self.incorrect_apps()
            if self.plans[pkg].gt_incorrect
        }
        inconsistent_tp = self.inconsistent_true_apps()
        problem_apps = incomplete_tp | incorrect_tp | inconsistent_tp
        desc_tp = {
            pkg for pkg in self.incomplete_desc_apps()
            if self.plans[pkg].gt_incomplete_desc
        }
        code_tp = {
            pkg for pkg in self.incomplete_code_apps()
            if self.plans[pkg].gt_incomplete_code
        }
        return {
            "apps": self.n_apps,
            "problem_apps": len(problem_apps),
            "problem_fraction": len(problem_apps) / self.n_apps
            if self.n_apps else 0.0,
            "incomplete_apps": len(incomplete_tp),
            "incomplete_via_description": len(desc_tp),
            "incomplete_via_code": len(code_tp),
            "incorrect_apps": len(incorrect_tp),
            "incorrect_via_description": len(
                {p for p in self.incorrect_apps("description")
                 if self.plans[p].gt_incorrect}
            ),
            "incorrect_via_code": len(
                {p for p in self.incorrect_apps("code")
                 if self.plans[p].gt_incorrect}
            ),
            "inconsistent_apps": len(inconsistent_tp),
            "quarantined_apps": len(self.failures),
        }

    # -- export & paper comparison ------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable rendering of every table and figure."""
        dist, retained = self.fig13()
        return {
            "summary": self.summary(),
            "table3": self.table3(),
            "fig13": {
                info.value: count for info, count in dist.items()
            },
            "fig13_retained": retained,
            "table4": {
                name: {"tp": row.tp, "fp": row.fp, "fn": row.fn,
                       "precision": row.precision,
                       "recall": row.recall, "f1": row.f1}
                for name, row in self.table4().items()
            },
            "quarantine": [
                self.failures[pkg].to_dict()
                for pkg in sorted(self.failures)
            ],
        }

    def deviations_from_paper(self) -> dict[str, tuple]:
        """Summary metrics that differ from :data:`PAPER_RESULTS`."""
        summary = self.summary()
        out: dict[str, tuple] = {}
        for key, paper_value in PAPER_RESULTS.items():
            measured = summary.get(key)
            if measured is None:
                continue
            if isinstance(paper_value, float):
                if abs(measured - paper_value) > 0.002:
                    out[key] = (paper_value, measured)
            elif measured != paper_value:
                out[key] = (paper_value, measured)
        return out


#: the paper's published evaluation numbers (Section V).
PAPER_RESULTS: dict[str, int | float] = {
    "apps": 1197,
    "problem_apps": 282,
    "problem_fraction": 0.236,
    "incomplete_apps": 222,
    "incomplete_via_description": 64,
    "incomplete_via_code": 180,
    "incorrect_apps": 4,
    "incorrect_via_description": 2,
    "incorrect_via_code": 4,
    "inconsistent_apps": 75,
}


def run_study(
    store: AppStore,
    checker: PPChecker | None = None,
    limit: int | None = None,
    workers: int = 1,
    keep_going: bool = True,
    skip: dict[str, AppReport | AppFailure] | None = None,
    on_outcome: Callable[[str, AppReport | AppFailure],
                         None] | None = None,
) -> StudyResult:
    """Run PPChecker over every app of the store.

    ``workers`` fans the per-app checks out over the pipeline's batch
    executor (thread pool, deterministic ordering); the aggregated
    numbers are identical for any worker count.  The pipeline's
    per-stage counters land on ``result.stats``.

    With ``keep_going`` (the default) an app whose check fails is
    quarantined on ``result.failures`` instead of aborting the study
    -- broken inputs are the norm at corpus scale; pass
    ``keep_going=False`` to fail fast on the first broken bundle.

    ``skip`` maps package -> an already-known outcome (replayed from
    a journal by ``study --resume``); those apps are merged into the
    result without re-checking.  ``on_outcome`` observes every
    *freshly computed* outcome as ``(package, outcome)`` the moment
    its app finishes -- the durability layer's checkpoint hook; it
    never re-fires for skipped apps.
    """
    started = time.perf_counter()
    if checker is None:
        checker = PPChecker(lib_policy_source=store.lib_policy)
    apps = store.apps if limit is None else store.apps[:limit]
    skip = skip or {}
    result = StudyResult(n_apps=len(apps))
    remaining = [app for app in apps if app.package not in skip]
    callback = None
    if on_outcome is not None:
        hook = on_outcome

        def callback(bundle, outcome):  # noqa: ANN001 - local adapter
            hook(bundle.package, outcome)

    outcomes = checker.check_batch(
        [app.bundle for app in remaining], workers=workers,
        on_error="quarantine" if keep_going else "raise",
        on_outcome=callback,
    )
    fresh = dict(zip((app.package for app in remaining), outcomes))
    for app in apps:
        result.plans[app.package] = app.plan
        outcome = (skip[app.package] if app.package in skip
                   else fresh[app.package])
        if isinstance(outcome, AppFailure):
            result.failures[app.package] = outcome
        else:
            result.reports[app.package] = outcome
    result.stats = checker.stats
    result.telemetry = _telemetry(started, len(apps))
    return result


# ---------------------------------------------------------------------------
# streaming execution
# ---------------------------------------------------------------------------


def _telemetry(started: float, apps: int) -> dict[str, float | int]:
    """Run telemetry: process high-water RSS plus throughput."""
    elapsed = time.perf_counter() - started
    return {
        "peak_rss_kb": resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss,
        "apps_per_sec": apps / elapsed if elapsed > 0 else 0.0,
        "elapsed_s": elapsed,
    }


class ResultSink(Protocol):
    """Anything that wants every finished outcome, in index order
    (e.g. :class:`repro.core.results.ShardedResultWriter`)."""

    def emit(self, index: int, key: str,
             outcome: AppReport | AppFailure) -> None: ...


@dataclass
class StudyAggregate:
    """:class:`StudyResult`'s tables, folded one app at a time.

    Holds counters instead of the reports dict, so its size is
    independent of the corpus: the streaming study folds a
    million-app run into the same few hundred bytes as the paper's
    1,197.  ``to_dict()`` is pinned byte-identical to
    ``StudyResult.to_dict()`` -- every table in the materialized
    result decomposes into per-app increments, and :meth:`fold`
    applies exactly those increments.
    """

    n_apps: int = 0
    checked: int = 0
    _table3: Counter[str] = field(default_factory=Counter)
    _fig13: Counter[InfoType] = field(default_factory=Counter)
    _fig13_retained: int = 0
    _code_tp: int = 0
    _code_fp: int = 0
    _rows: dict[str, RowMetrics] = field(default_factory=lambda: {
        "collect_use_retain": RowMetrics(), "disclose": RowMetrics()})
    _summary: Counter[str] = field(default_factory=Counter)
    failures: dict[str, AppFailure] = field(default_factory=dict)
    stats: PipelineStats | None = field(default=None, repr=False,
                                        compare=False)
    telemetry: dict[str, float | int] | None = field(
        default=None, repr=False, compare=False)

    # -- the fold ----------------------------------------------------------

    def fold(self, plan: AppPlan,
             outcome: AppReport | AppFailure) -> None:
        """Account one finished app."""
        self.n_apps += 1
        if isinstance(outcome, AppFailure):
            self.failures[plan.package] = outcome
            return
        report = outcome
        self.checked += 1

        desc_findings = report.incomplete_via("description")
        for permission in {f.permission for f in desc_findings}:
            self._table3[permission] += 1
        desc_tp = bool(desc_findings) and plan.gt_incomplete_desc

        code_findings = report.incomplete_via("code")
        code_tp = False
        if code_findings:
            if plan.gt_incomplete_code:
                code_tp = True
                self._code_tp += 1
                for finding in code_findings:
                    self._fig13[finding.info] += 1
                    if finding.retained:
                        self._fig13_retained += 1
            else:
                self._code_fp += 1

        incorrect_tp = bool(report.incorrect) and plan.gt_incorrect

        det_cur = any(f.category is not VerbCategory.DISCLOSE
                      for f in report.inconsistent)
        det_d = any(f.category is VerbCategory.DISCLOSE
                    for f in report.inconsistent)
        for row, detected, truth in (
            ("collect_use_retain", det_cur, plan.gt_inconsistent_cur),
            ("disclose", det_d, plan.gt_inconsistent_d),
        ):
            metrics = self._rows[row]
            if detected and truth:
                metrics.tp += 1
            elif detected and not truth:
                metrics.fp += 1
            elif not detected and truth:
                metrics.fn += 1
        inconsistent_tp = (det_cur and plan.gt_inconsistent_cur) or (
            det_d and plan.gt_inconsistent_d)

        summary = self._summary
        if desc_tp:
            summary["incomplete_via_description"] += 1
        if code_tp:
            summary["incomplete_via_code"] += 1
        if desc_tp or code_tp:
            summary["incomplete_apps"] += 1
        if incorrect_tp:
            summary["incorrect_apps"] += 1
        if report.incorrect_via("description") and plan.gt_incorrect:
            summary["incorrect_via_description"] += 1
        if report.incorrect_via("code") and plan.gt_incorrect:
            summary["incorrect_via_code"] += 1
        if inconsistent_tp:
            summary["inconsistent_apps"] += 1
        if desc_tp or code_tp or incorrect_tp or inconsistent_tp:
            summary["problem_apps"] += 1

    # -- StudyResult-compatible views --------------------------------------

    def table3(self) -> dict[str, int]:
        return dict(self._table3)

    def fig13(self) -> tuple[Counter[InfoType], int]:
        return self._fig13, self._fig13_retained

    def incomplete_code_confusion(self) -> tuple[int, int]:
        return self._code_tp, self._code_fp

    def table4(self) -> dict[str, RowMetrics]:
        return self._rows

    def summary(self) -> dict[str, int | float]:
        problems = self._summary
        return {
            "apps": self.n_apps,
            "problem_apps": problems["problem_apps"],
            "problem_fraction": problems["problem_apps"] / self.n_apps
            if self.n_apps else 0.0,
            "incomplete_apps": problems["incomplete_apps"],
            "incomplete_via_description":
                problems["incomplete_via_description"],
            "incomplete_via_code": problems["incomplete_via_code"],
            "incorrect_apps": problems["incorrect_apps"],
            "incorrect_via_description":
                problems["incorrect_via_description"],
            "incorrect_via_code": problems["incorrect_via_code"],
            "inconsistent_apps": problems["inconsistent_apps"],
            "quarantined_apps": len(self.failures),
        }

    def to_dict(self) -> dict:
        dist, retained = self.fig13()
        return {
            "summary": self.summary(),
            "table3": self.table3(),
            "fig13": {
                info.value: count for info, count in dist.items()
            },
            "fig13_retained": retained,
            "table4": {
                name: {"tp": row.tp, "fp": row.fp, "fn": row.fn,
                       "precision": row.precision,
                       "recall": row.recall, "f1": row.f1}
                for name, row in self.table4().items()
            },
            "quarantine": [
                self.failures[pkg].to_dict()
                for pkg in sorted(self.failures)
            ],
        }

    def deviations_from_paper(self) -> dict[str, tuple]:
        summary = self.summary()
        out: dict[str, tuple] = {}
        for key, paper_value in PAPER_RESULTS.items():
            measured = summary.get(key)
            if measured is None:
                continue
            if isinstance(paper_value, float):
                if abs(measured - paper_value) > 0.002:
                    out[key] = (paper_value, measured)
            elif measured != paper_value:
                out[key] = (paper_value, measured)
        return out


def run_study_streaming(
    spec: CorpusSpec,
    checker: PPChecker | None = None,
    limit: int | None = None,
    workers: int = 1,
    window: int | None = None,
    keep_going: bool = True,
    skip: dict[str, AppReport | AppFailure] | None = None,
    on_outcome: Callable[[str, AppReport | AppFailure],
                         None] | None = None,
    sinks: Iterable[ResultSink] = (),
    shards: int = 0,
    shard_options: "ShardOptions | None" = None,
) -> StudyAggregate:
    """The study as a bounded-memory stream over a lazy corpus.

    Apps are derived from *spec* one index at a time, pushed through
    the checker with at most *window* apps in flight (default
    ``4 * workers``), and folded straight into a
    :class:`StudyAggregate` -- peak RSS is set by the window, not by
    ``len(spec)``.  Outcomes are drained and folded **in index
    order** regardless of worker completion order, so every sink
    (e.g. the sharded NDJSON writer) sees a deterministic emission
    sequence and reruns are byte-identical.

    ``skip``/``on_outcome`` mirror :func:`run_study`: ``skip`` maps
    package -> journal-replayed outcome (folded and emitted to sinks,
    but never re-checked and never re-fired through ``on_outcome``),
    which is what makes a ``--resume`` d streaming run reproduce the
    uninterrupted run's shards byte-for-byte.

    With ``shards > 0`` the per-app checks run on the consistent-hash
    *process* worker plane instead of a thread pool (see
    :class:`ShardPool`); *checker*/*workers* are ignored and
    *shard_options* carries the pipeline flags each worker process
    rebuilds its checker from.  Folding and sink emission still
    happen in the parent, in index order, so the aggregates and the
    NDJSON result shards stay byte-identical to the in-process run.
    """
    started = time.perf_counter()
    if shards > 0:
        return _run_study_streaming_sharded(
            spec, started, limit=limit, shards=shards,
            shard_options=shard_options,
            window=window if window is not None else 32,
            keep_going=keep_going, skip=skip,
            on_outcome=on_outcome, sinks=sinks)
    if checker is None:
        checker = PPChecker(lib_policy_source=spec.lib_policy)
    total = len(spec) if limit is None else min(limit, len(spec))
    workers = max(1, workers)
    if window is None:
        window = max(4 * workers, 1)
    window = max(window, workers)
    skip = skip or {}
    sinks = tuple(sinks)
    aggregate = StudyAggregate()

    def outcome_for(plan: AppPlan) -> AppReport | AppFailure:
        try:
            return checker.check(spec.app(plan.index).bundle)
        except Exception as exc:
            if not keep_going:
                raise
            return AppFailure.from_exception(plan.package, exc)

    def settle(plan: AppPlan, outcome: AppReport | AppFailure,
               fresh: bool) -> None:
        if fresh and on_outcome is not None:
            on_outcome(plan.package, outcome)
        aggregate.fold(plan, outcome)
        for sink in sinks:
            sink.emit(plan.index, plan.package, outcome)

    if workers == 1:
        for index in range(total):
            plan = spec.plan(index)
            if plan.package in skip:
                settle(plan, skip[plan.package], fresh=False)
            else:
                settle(plan, outcome_for(plan), fresh=True)
    else:
        pending: deque[tuple[AppPlan, object]] = deque()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for index in range(total):
                plan = spec.plan(index)
                if plan.package in skip:
                    pending.append((plan, skip[plan.package]))
                else:
                    pending.append(
                        (plan, pool.submit(outcome_for, plan)))
                while len(pending) >= window:
                    head_plan, slot = pending.popleft()
                    fresh = isinstance(slot, Future)
                    outcome = slot.result() if fresh else slot
                    settle(head_plan, outcome, fresh=fresh)
            while pending:
                head_plan, slot = pending.popleft()
                fresh = isinstance(slot, Future)
                outcome = slot.result() if fresh else slot
                settle(head_plan, outcome, fresh=fresh)

    aggregate.stats = checker.stats
    aggregate.telemetry = _telemetry(started, total)
    return aggregate


def _run_study_streaming_sharded(
    spec: CorpusSpec,
    started: float,
    limit: int | None,
    shards: int,
    shard_options: "ShardOptions | None",
    window: int,
    keep_going: bool,
    skip: dict[str, AppReport | AppFailure] | None,
    on_outcome: Callable[[str, AppReport | AppFailure], None] | None,
    sinks: Iterable[ResultSink],
) -> StudyAggregate:
    """The streaming study's process worker plane: per-app checks run
    on a :class:`ShardPool`; folding and sink emission stay in the
    parent, in index order."""
    total = len(spec) if limit is None else min(limit, len(spec))
    skip = skip or {}
    sinks = tuple(sinks)
    aggregate = StudyAggregate()
    with ShardPool(spec, shards=shards, total=total, skip=set(skip),
                   options=shard_options, keep_going=keep_going,
                   window=window) as pool:
        fresh = pool.outcomes()
        for index in range(total):
            plan = spec.plan(index)
            if plan.package in skip:
                outcome = skip[plan.package]
            else:
                _, outcome = next(fresh)
                if on_outcome is not None:
                    on_outcome(plan.package, outcome)
            aggregate.fold(plan, outcome)
            for sink in sinks:
                sink.emit(plan.index, plan.package, outcome)
        aggregate.stats = pool.finish()
    aggregate.telemetry = _telemetry(started, total)
    return aggregate


def merge_study_results(out_dir: str) -> StudyAggregate:
    """Reconstitute the study tables from a finalized shard
    directory (see :mod:`repro.core.results`).

    Plans are re-derived lazily from the corpus identity stamped in
    the shard headers, so the merge -- like the run that produced the
    shards -- never materializes the corpus.
    """
    from repro.core import results

    meta = results.read_meta(out_dir)
    if meta is None:
        raise results.ResultShardError(
            f"{out_dir}: no finalized result shards")
    spec = CorpusSpec(seed=meta["seed"], n_apps=meta["apps"])
    expected = meta.get("limit")
    expected = len(spec) if expected is None else min(expected,
                                                     len(spec))
    aggregate = StudyAggregate()
    for index, _key, outcome in results.iter_results(out_dir):
        aggregate.fold(spec.plan(index), outcome)
    if aggregate.n_apps != expected:
        raise results.ResultShardError(
            f"{out_dir}: shards hold {aggregate.n_apps} outcomes "
            f"but the run meta promises {expected} -- partial run?")
    return aggregate


# ---------------------------------------------------------------------------
# sharded execution (the process worker plane)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardOptions:
    """Pipeline construction parameters the study's worker processes
    need on their side of the spawn boundary.

    The parent never ships a checker across -- each worker rebuilds
    its own from these primitives, which is also what keeps the
    sharded study byte-identical to the single-process one: the same
    flags produce the same pipeline.
    """

    #: artifact cache directory shared by every shard (``None``
    #: disables the disk tier)
    cache_dir: str | None = None
    #: ``"json"`` (one file per artifact) or ``"sqlite"`` (the
    #: cross-process :class:`repro.pipeline.artifacts.SharedDiskStore`)
    store_backend: str = "json"
    max_retries: int = 0
    stage_timeout: float | None = None
    #: path to a JSON fault plan (see :mod:`repro.pipeline.faults`)
    fault_plan: str | None = None


def _shard_worker_main(shard: int, shards: int, seed: int, n_apps: int,
                       total: int, skip: frozenset,
                       options: ShardOptions, keep_going: bool,
                       out_queue) -> None:
    """Worker process: check every corpus index whose package the hash
    ring assigns to shard *shard*, in ascending index order, streaming
    ``("outcome", index, outcome)`` records back.  Always ends with a
    ``("stats", snapshot)`` record so the parent can merge pipeline
    counters."""
    from repro.pipeline.artifacts import build_store
    from repro.pipeline.faults import FaultPlan
    from repro.pipeline.resilience import RetryPolicy
    from repro.service.hashring import ring_for, shard_name

    spec = CorpusSpec(seed=seed, n_apps=n_apps)
    ring = ring_for(shards)
    mine = shard_name(shard)
    fault_plan = (FaultPlan.from_json_file(options.fault_plan)
                  if options.fault_plan is not None else None)
    checker = PPChecker(
        lib_policy_source=spec.lib_policy,
        artifact_store=build_store(cache_dir=options.cache_dir,
                                   backend=options.store_backend),
        retry_policy=RetryPolicy(max_retries=options.max_retries,
                                 stage_timeout=options.stage_timeout),
        fault_plan=fault_plan,
    )
    try:
        for index in range(total):
            if ring.place(spec.package_for(index)) != mine:
                continue
            plan = spec.plan(index)
            if plan.package in skip:
                continue
            try:
                outcome = checker.check(spec.app(index).bundle)
            except Exception as exc:
                if not keep_going:
                    try:
                        out_queue.put(("fatal", index, exc))
                    except Exception:
                        out_queue.put(("fatal", index, RuntimeError(
                            f"{type(exc).__name__}: {exc}")))
                    return
                outcome = AppFailure.from_exception(plan.package, exc)
            out_queue.put(("outcome", index, outcome))
    finally:
        out_queue.put(("stats", checker.stats.snapshot()))


class ShardPool:
    """The study's process worker plane -- the same consistent-hash
    assignment as ``serve --shards N``, driven directly.

    *shards* spawn processes each own the corpus indices whose
    package name the service hash ring
    (:func:`repro.service.hashring.ring_for`) places on their shard
    name.  The parent drains outcomes in **global index order**:
    every index belongs to exactly one shard and each shard emits its
    indices ascending, so the head of the owner's queue is always the
    next outcome.  Per-shard queues are bounded by *window*, so a
    fast shard blocks instead of buffering unboundedly -- peak parent
    memory is ``shards * window`` outcomes, never the corpus.
    """

    def __init__(self, spec: CorpusSpec, shards: int, total: int,
                 skip: frozenset | set = frozenset(),
                 options: ShardOptions | None = None,
                 keep_going: bool = True, window: int = 32):
        import multiprocessing

        from repro.service.hashring import ring_for, shard_name

        self.spec = spec
        self.shards = max(1, min(shards, max(total, 1)))
        self.total = total
        self.skip = frozenset(skip)
        self.ring = ring_for(self.shards)
        self._owner_index = {shard_name(i): i
                             for i in range(self.shards)}
        options = options or ShardOptions()
        ctx = multiprocessing.get_context("spawn")
        self.queues = [ctx.Queue(maxsize=max(1, window))
                       for _ in range(self.shards)]
        self.processes = [
            ctx.Process(
                target=_shard_worker_main,
                args=(index, self.shards, spec.seed, spec.n_apps,
                      total, self.skip, options, keep_going,
                      self.queues[index]),
                daemon=True,
            )
            for index in range(self.shards)
        ]

    def __enter__(self) -> "ShardPool":
        for process in self.processes:
            process.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _next(self, shard: int):
        """The next record from *shard*, raising instead of hanging
        forever if its process died mid-run (e.g. SIGKILL)."""
        import queue as queue_module

        while True:
            try:
                return self.queues[shard].get(timeout=1.0)
            except queue_module.Empty:
                process = self.processes[shard]
                if not process.is_alive():
                    raise RuntimeError(
                        f"study shard {shard} died (exit code "
                        f"{process.exitcode}) before finishing its "
                        f"indices; rerun with --journal/--resume to "
                        f"replay the finished apps") from None

    def outcomes(self) -> "Iterable[tuple[int, AppReport | AppFailure]]":
        """Yield ``(index, outcome)`` for every fresh (non-skipped)
        index, in ascending index order."""
        for index in range(self.total):
            package = self.spec.package_for(index)
            if package in self.skip:
                continue
            shard = self._owner_index[self.ring.place(package)]
            record = self._next(shard)
            kind = record[0]
            if kind == "fatal":
                error = record[2]
                if isinstance(error, BaseException):
                    raise error
                raise RuntimeError(str(error))
            if kind != "outcome" or record[1] != index:
                raise RuntimeError(
                    f"study shard {shard} broke protocol: expected "
                    f"outcome {index}, got {kind!r} "
                    f"{record[1] if len(record) > 1 else None!r}")
            yield index, record[2]

    def finish(self) -> PipelineStats:
        """Collect each shard's trailing stats record and merge the
        per-stage counters; call after :meth:`outcomes` is drained."""
        merged = PipelineStats()
        for shard in range(self.shards):
            record = self._next(shard)
            if record[0] != "stats":
                raise RuntimeError(
                    f"study shard {shard} broke protocol: expected "
                    f"stats, got {record[0]!r}")
            for name, row in record[1].items():
                stage = merged.stage(name)
                stage.executions += row["executions"]
                stage.cache_hits += row["cache_hits"]
                stage.failures += row["failures"]
                stage.seconds += row["seconds"]
        return merged

    def close(self) -> None:
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        for process in self.processes:
            process.join(timeout=10.0)
        for queue in self.queues:
            queue.close()
            queue.cancel_join_thread()


def run_study_sharded(
    seed: int = 2016,
    n_apps: int = 1197,
    shards: int = 2,
    limit: int | None = None,
    keep_going: bool = True,
    skip: dict[str, AppReport | AppFailure] | None = None,
    on_outcome: Callable[[str, AppReport | AppFailure],
                         None] | None = None,
    options: ShardOptions | None = None,
    window: int = 32,
) -> StudyResult:
    """The study over the consistent-hash worker plane: *shards*
    processes, each checking the corpus indices the service hash ring
    assigns to it, drained in index order.

    The aggregated result is byte-identical to :func:`run_study` for
    any shard count -- assignment only decides *where* an app is
    checked, never what its report says.  ``skip``/``on_outcome``
    mirror :func:`run_study` (journal replay / checkpoint hooks); the
    hooks fire in the parent, in index order, so a journaled sharded
    run resumes exactly like a single-process one.
    """
    started = time.perf_counter()
    spec = CorpusSpec(seed=seed, n_apps=n_apps)
    total = len(spec) if limit is None else min(limit, len(spec))
    skip = skip or {}
    result = StudyResult(n_apps=total)
    with ShardPool(spec, shards=shards, total=total, skip=set(skip),
                   options=options, keep_going=keep_going,
                   window=window) as pool:
        fresh = pool.outcomes()
        for index in range(total):
            plan = spec.plan(index)
            if plan.package in skip:
                outcome = skip[plan.package]
            else:
                _, outcome = next(fresh)
                if on_outcome is not None:
                    on_outcome(plan.package, outcome)
            result.plans[plan.package] = plan
            if isinstance(outcome, AppFailure):
                result.failures[plan.package] = outcome
            else:
                result.reports[plan.package] = outcome
        result.stats = pool.finish()
    result.telemetry = _telemetry(started, total)
    return result


def run_study_parallel(
    seed: int = 2016,
    n_apps: int = 1197,
    jobs: int = 2,
) -> StudyResult:
    """The study fanned out over worker processes -- the same
    hash-ring worker plane as ``study --shards N``.

    Each worker derives only its own apps from the lazy
    :class:`CorpusSpec` (per-index RNG derivation -- no worker ever
    builds the full store), so no APKs cross process boundaries --
    only the reports come back.
    """
    return run_study_sharded(seed=seed, n_apps=n_apps, shards=jobs)


__all__ = ["RowMetrics", "StudyResult", "StudyAggregate",
           "ResultSink", "ShardOptions", "ShardPool", "PAPER_RESULTS",
           "run_study", "run_study_streaming", "run_study_sharded",
           "merge_study_results", "run_study_parallel"]
