"""Finding and report types: PPChecker's output (Section III-A).

For each app, PPChecker reports whether its policy is incomplete
(with the missed information), incorrect (with the offending
sentences), and/or inconsistent (with the conflicting app/lib sentence
pairs).
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field

from repro.policy.verbs import VerbCategory
from repro.semantics.resources import InfoType


@dataclass(frozen=True)
class IncompleteFinding:
    """Information the app handles but the policy does not mention."""

    info: InfoType
    source: str                  # "description" | "code"
    retained: bool = False       # the missed record is a retention fact
    permission: str = ""         # description findings: inferring permission
    evidence: tuple[str, ...] = ()  # code findings: API/URI evidence


@dataclass(frozen=True)
class IncorrectFinding:
    """The policy denies a behaviour the app performs."""

    info: InfoType
    source: str                  # "description" | "code"
    denial_sentence: str
    kind: str = "collect"        # "collect" | "retain" (Alg. 3 vs 4 path)
    evidence: tuple[str, ...] = ()


@dataclass(frozen=True)
class InconsistentFinding:
    """App-policy denial conflicting with a lib-policy assertion."""

    lib_id: str
    category: VerbCategory
    app_sentence: str
    lib_sentence: str
    app_resource: str
    lib_resource: str

    @property
    def is_disclose(self) -> bool:
        """Table IV splits Sents_disclose from Sents_{collect,use,retain}."""
        return self.category is VerbCategory.DISCLOSE


@dataclass
class AppReport:
    """PPChecker's verdict for one app."""

    package: str
    incomplete: list[IncompleteFinding] = field(default_factory=list)
    incorrect: list[IncorrectFinding] = field(default_factory=list)
    inconsistent: list[InconsistentFinding] = field(default_factory=list)

    @property
    def is_incomplete(self) -> bool:
        return bool(self.incomplete)

    @property
    def is_incorrect(self) -> bool:
        return bool(self.incorrect)

    @property
    def is_inconsistent(self) -> bool:
        return bool(self.inconsistent)

    @property
    def has_problem(self) -> bool:
        return self.is_incomplete or self.is_incorrect or self.is_inconsistent

    def problem_kinds(self) -> set[str]:
        kinds: set[str] = set()
        if self.is_incomplete:
            kinds.add("incomplete")
        if self.is_incorrect:
            kinds.add("incorrect")
        if self.is_inconsistent:
            kinds.add("inconsistent")
        return kinds

    def incomplete_via(self, source: str) -> list[IncompleteFinding]:
        return [f for f in self.incomplete if f.source == source]

    def incorrect_via(self, source: str) -> list[IncorrectFinding]:
        return [f for f in self.incorrect if f.source == source]

    def to_dict(self) -> dict:
        """JSON-serializable rendering of the report."""
        return {
            "package": self.package,
            "has_problem": self.has_problem,
            "problem_kinds": sorted(self.problem_kinds()),
            "incomplete": [
                {
                    "info": f.info.value,
                    "source": f.source,
                    "retained": f.retained,
                    "permission": f.permission,
                    "evidence": list(f.evidence),
                }
                for f in self.incomplete
            ],
            "incorrect": [
                {
                    "info": f.info.value,
                    "source": f.source,
                    "kind": f.kind,
                    "denial_sentence": f.denial_sentence,
                    "evidence": list(f.evidence),
                }
                for f in self.incorrect
            ],
            "inconsistent": [
                {
                    "lib": f.lib_id,
                    "category": f.category.value,
                    "app_sentence": f.app_sentence,
                    "lib_sentence": f.lib_sentence,
                    "app_resource": f.app_resource,
                    "lib_resource": f.lib_resource,
                }
                for f in self.inconsistent
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> AppReport:
        """Rebuild a report from :meth:`to_dict` output (pipeline
        disk cache); derived fields are recomputed, not read."""
        report = cls(package=doc["package"])
        report.incomplete = [
            IncompleteFinding(
                info=InfoType(f["info"]),
                source=f["source"],
                retained=f.get("retained", False),
                permission=f.get("permission", ""),
                evidence=tuple(f.get("evidence", ())),
            )
            for f in doc.get("incomplete", ())
        ]
        report.incorrect = [
            IncorrectFinding(
                info=InfoType(f["info"]),
                source=f["source"],
                denial_sentence=f["denial_sentence"],
                kind=f.get("kind", "collect"),
                evidence=tuple(f.get("evidence", ())),
            )
            for f in doc.get("incorrect", ())
        ]
        report.inconsistent = [
            InconsistentFinding(
                lib_id=f["lib"],
                category=VerbCategory(f["category"]),
                app_sentence=f["app_sentence"],
                lib_sentence=f["lib_sentence"],
                app_resource=f["app_resource"],
                lib_resource=f["lib_resource"],
            )
            for f in doc.get("inconsistent", ())
        ]
        return report

    def clone(self) -> AppReport:
        """A defensive copy handed out by the artifact cache
        (findings are frozen, so shallow list copies suffice)."""
        return AppReport(
            package=self.package,
            incomplete=list(self.incomplete),
            incorrect=list(self.incorrect),
            inconsistent=list(self.inconsistent),
        )

    def summary(self) -> str:
        """A one-app human-readable report."""
        lines = [f"=== {self.package} ==="]
        if not self.has_problem:
            lines.append("no problems detected")
            return "\n".join(lines)
        for finding in self.incomplete:
            extra = " (retained)" if finding.retained else ""
            lines.append(
                f"INCOMPLETE via {finding.source}: policy misses "
                f"'{finding.info}'{extra}"
            )
        for finding in self.incorrect:
            lines.append(
                f"INCORRECT via {finding.source}: app does "
                f"{finding.kind} '{finding.info}' but policy says: "
                f"\"{finding.denial_sentence}\""
            )
        for finding in self.inconsistent:
            lines.append(
                f"INCONSISTENT with lib '{finding.lib_id}' "
                f"[{finding.category}]: app says "
                f"\"{finding.app_sentence}\" / lib says "
                f"\"{finding.lib_sentence}\""
            )
        return "\n".join(lines)


#: frames kept when truncating a failure traceback -- the deepest ones
#: identify the raise site and stay identical across serial/parallel
#: execution paths, which the determinism tests rely on.
_TRACEBACK_FRAMES = 3


def _truncated_traceback(exc: BaseException,
                         max_frames: int = _TRACEBACK_FRAMES) -> str:
    frames = traceback.extract_tb(exc.__traceback__)[-max_frames:]
    return "\n".join(
        f"{frame.filename}:{frame.lineno} in {frame.name}"
        for frame in frames
    )


@dataclass
class AppFailure:
    """One quarantined app: why the pipeline could not produce an
    :class:`AppReport` for it.

    Batch entry points running in keep-going mode return these in
    place of reports for failing bundles, so one broken APK or policy
    page degrades a study instead of aborting it (Section V at corpus
    scale).  ``stage`` is the pipeline stage that failed (``"check"``
    when the failure happened outside any stage), ``attempts`` how
    many executions the retry policy tried.
    """

    package: str
    stage: str
    error: str                   # exception class name
    message: str
    traceback: str = ""          # truncated: deepest frames only
    attempts: int = 1

    @classmethod
    def from_exception(cls, package: str,
                       exc: BaseException) -> AppFailure:
        """Build the quarantine record for *exc*.

        :class:`repro.pipeline.resilience.StageError` is recognized
        structurally (``stage`` / ``attempts`` attributes plus the
        original exception as ``__cause__``) to keep this module free
        of a pipeline import.
        """
        stage = getattr(exc, "stage", None)
        if stage is not None:
            cause = exc.__cause__ or exc
            attempts = getattr(exc, "attempts", 1)
        else:
            stage, cause, attempts = "check", exc, 1
        return cls(
            package=package,
            stage=stage,
            error=type(cause).__name__,
            message=str(cause),
            traceback=_truncated_traceback(cause),
            attempts=attempts,
        )

    def to_dict(self) -> dict:
        return {
            "package": self.package,
            "stage": self.stage,
            "error": self.error,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> AppFailure:
        return cls(
            package=doc["package"],
            stage=doc["stage"],
            error=doc["error"],
            message=doc.get("message", ""),
            traceback=doc.get("traceback", ""),
            attempts=doc.get("attempts", 1),
        )

    def summary(self) -> str:
        """A one-line human-readable quarantine entry."""
        return (
            f"=== {self.package} ===\n"
            f"FAILED at {self.stage} after {self.attempts} "
            f"attempt(s): {self.error}: {self.message}"
        )


def partition_outcomes(
    outcomes: list,
) -> tuple[list[AppReport], list[AppFailure]]:
    """Split a keep-going batch result into (reports, failures),
    each preserving input order."""
    reports = [o for o in outcomes if isinstance(o, AppReport)]
    failures = [o for o in outcomes if isinstance(o, AppFailure)]
    return reports, failures


__all__ = [
    "IncompleteFinding",
    "IncorrectFinding",
    "InconsistentFinding",
    "AppReport",
    "AppFailure",
    "partition_outcomes",
]
