"""Incomplete-privacy-policy detection (Section IV-A, Alg. 1 and 2).

A policy is incomplete when information the app *uses* -- inferred
from the description (Alg. 1) or observed in the bytecode (Alg. 2) --
is not covered by any Collect/Use/Retain/Disclose statement.
"""

from __future__ import annotations

from repro.android.static_analysis import StaticAnalysisResult
from repro.core.matching import InfoMatcher
from repro.core.report import IncompleteFinding
from repro.description.permission_map import info_for_permission
from repro.policy.model import PolicyAnalysis
from repro.semantics.resources import InfoType


def detect_incomplete_via_description(
    policy: PolicyAnalysis,
    description_permissions: set[str],
    matcher: InfoMatcher,
) -> list[IncompleteFinding]:
    """Alg. 1: Info_desc not covered by PPInfos -> incomplete.

    Each finding carries the permission whose inference exposed the
    gap (the unit Table III counts).
    """
    pp_infos = policy.all_positive()
    pairs: list[tuple[str, InfoType]] = []
    seen: set[tuple[InfoType, str]] = set()
    for permission in sorted(description_permissions):
        for info in info_for_permission(permission):
            if (info, permission) in seen:
                continue
            seen.add((info, permission))
            pairs.append((permission, info))
    # one interpreted-and-indexed pass over this policy's phrases
    # answers every information type at once
    covered = matcher.covered_many((info for _, info in pairs),
                                   pp_infos)
    findings: list[IncompleteFinding] = []
    for permission, info in pairs:
        if covered[info]:
            continue
        findings.append(IncompleteFinding(
            info=info,
            source="description",
            permission=permission,
        ))
    return findings


def detect_incomplete_via_code(
    policy: PolicyAnalysis,
    static_result: StaticAnalysisResult,
    matcher: InfoMatcher,
) -> list[IncompleteFinding]:
    """Alg. 2: Collect_code ∪ Retain_code not covered -> incomplete.

    The permission gate ("we only consider the app that requires the
    corresponding permissions") is applied inside the static analysis.
    A finding is flagged ``retained`` when the missed record is a
    retention fact (the paper: 32 of 234 missed records).
    """
    pp_infos = policy.all_positive()
    findings: list[IncompleteFinding] = []
    retained = static_result.retained_infos()
    infos = sorted(
        static_result.collected_infos() | retained, key=lambda i: i.value
    )
    covered = matcher.covered_many(infos, pp_infos)
    for info in infos:
        if covered[info]:
            continue
        evidence = tuple(static_result.evidence_for(info))
        if not evidence:
            evidence = tuple(
                path.source_api
                for path in static_result.retained
                if path.info is info
            )
        findings.append(IncompleteFinding(
            info=info,
            source="code",
            retained=info in retained,
            evidence=evidence,
        ))
    return findings


__all__ = [
    "detect_incomplete_via_description",
    "detect_incomplete_via_code",
]
