"""Inconsistent-privacy-policy detection (Section IV-C, Alg. 5).

An app's policy is inconsistent when a *negative* app statement and a
*positive* statement in an embedded third-party lib's policy share the
same main-verb category and refer to the same resource.  A policy
that disclaims responsibility for third parties suppresses the check
(the paper's com.shortbreakstudios.HammerTime example).
"""

from __future__ import annotations

from repro.core.matching import InfoMatcher
from repro.core.report import InconsistentFinding
from repro.policy.model import PolicyAnalysis


def detect_inconsistent(
    app_policy: PolicyAnalysis,
    lib_policies: dict[str, PolicyAnalysis],
    matcher: InfoMatcher,
    honor_disclaimer: bool = True,
) -> list[InconsistentFinding]:
    """Alg. 5 over the app policy and each embedded lib's policy.

    ``honor_disclaimer`` exists for the ablation benchmark; the
    paper's configuration is True.
    """
    if honor_disclaimer and app_policy.has_third_party_disclaimer:
        return []

    findings: list[InconsistentFinding] = []
    seen: set[tuple[str, str, str]] = set()
    negatives = app_policy.negative_statements()
    for lib_id, lib_policy in sorted(lib_policies.items()):
        positives = lib_policy.positive_statements()
        for app_stmt in negatives:
            for lib_stmt in positives:
                # requirement (1): same main-verb category;
                # (2) polarity is already encoded in the statement lists
                if app_stmt.category is not lib_stmt.category:
                    continue
                # requirement (3): same resource
                hit = _matching_resources(app_stmt.resources,
                                          lib_stmt.resources, matcher)
                if hit is None:
                    continue
                app_res, lib_res = hit
                key = (lib_id, app_stmt.sentence, lib_stmt.sentence)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(InconsistentFinding(
                    lib_id=lib_id,
                    category=app_stmt.category,
                    app_sentence=app_stmt.sentence,
                    lib_sentence=lib_stmt.sentence,
                    app_resource=app_res,
                    lib_resource=lib_res,
                ))
    return findings


def _matching_resources(
    app_resources: tuple[str, ...],
    lib_resources: tuple[str, ...],
    matcher: InfoMatcher,
) -> tuple[str, str] | None:
    # batch scan (inverted-index pruned) preserving nested-loop order
    return matcher.first_match_pair(app_resources, lib_resources)


__all__ = ["detect_inconsistent"]
