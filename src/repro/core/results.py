"""Append-only sharded NDJSON study results.

At corpus scale a study's per-app outcomes cannot live in one process
dict (or one giant JSON document).  This module writes them as a
directory of NDJSON shards and reconstitutes the study tables from
those shards later:

- :class:`ShardedResultWriter` -- the streaming sink.  Outcomes are
  routed to ``shards`` files by ``index % shards`` (deterministic, so
  two runs over the same corpus produce byte-identical shards), each
  record is one JSON line, and a shard becomes visible atomically:
  records accumulate in ``shard-NNNN.ndjson.tmp`` and the finalize
  step appends a footer, fsyncs, and renames to ``shard-NNNN.ndjson``.
  A directory with no ``.tmp`` files therefore holds a complete run.
- :func:`iter_shard` / :func:`iter_results` -- validating readers.
  ``iter_results`` heap-merges the per-shard iterators back into
  global index order without materializing more than one record per
  shard.
- :func:`read_meta` -- the run identity (kind/seed/apps/limit)
  stamped into every shard header, used by ``merge-results`` to
  regenerate the matching corpus plans and by ``study --streaming``
  to refuse mixing two different runs in one directory.

Record vocabulary (one JSON object per line, ``sort_keys`` compact)::

    {"type": "header", "schema_version": 1, "results_format": 1,
     "shard": 0, "shards": 4, "meta": {...}}
    {"type": "outcome", "index": 17, "key": "com.example...",
     "kind": "report" | "quarantine", "doc": {...}}
    {"type": "footer", "records": 299}

``doc`` is the exact :meth:`~repro.core.report.AppReport.to_dict` /
:meth:`~repro.core.report.AppFailure.to_dict` payload, so merged
results round-trip byte-identically into the materialized study
tables.
"""

from __future__ import annotations

import heapq
import json
import os
from typing import Any, Iterator

from repro.core.report import AppFailure, AppReport
from repro.core.schema import versioned

#: bump when a line's keys are renamed/removed or change meaning.
RESULTS_FORMAT = 1

HEADER = "header"
OUTCOME = "outcome"
FOOTER = "footer"

REPORT = "report"
QUARANTINE = "quarantine"

_SHARD_PREFIX = "shard-"
_SHARD_SUFFIX = ".ndjson"
_TMP_SUFFIX = ".tmp"


class ResultShardError(RuntimeError):
    """A shard directory cannot back this operation (torn shard,
    foreign run, malformed record)."""


def shard_name(shard: int) -> str:
    return f"{_SHARD_PREFIX}{shard:04d}{_SHARD_SUFFIX}"


def shard_paths(out_dir: str) -> list[str]:
    """The finalized shard files of *out_dir*, in shard order."""
    try:
        names = sorted(
            name for name in os.listdir(out_dir)
            if name.startswith(_SHARD_PREFIX)
            and name.endswith(_SHARD_SUFFIX)
        )
    except FileNotFoundError:
        return []
    return [os.path.join(out_dir, name) for name in names]


def _dump_line(record: dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")) + "\n"


class ShardedResultWriter:
    """Streaming result sink: one append-only NDJSON file per shard.

    ``emit`` must be called from one thread (the streaming study's
    drain loop emits in index order); records within a shard are
    strictly index-ascending, which is what lets the merge step
    reconstitute global order with a k-way heap merge.

    ``close()`` finalizes every shard (footer + fsync + atomic
    rename); ``abort()`` discards the temporaries.  Until ``close()``
    returns, the directory never contains a half-written *finalized*
    shard -- crash recovery can always distinguish committed runs
    (no ``.tmp`` files) from torn ones.
    """

    def __init__(self, out_dir: str, meta: dict[str, Any],
                 shards: int = 4) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        os.makedirs(out_dir, exist_ok=True)
        self.out_dir = out_dir
        self.meta = dict(meta)
        self.shards = shards
        self._counts = [0] * shards
        self._closed = False
        self._handles = []
        for shard in range(shards):
            path = os.path.join(out_dir,
                                shard_name(shard) + _TMP_SUFFIX)
            handle = open(path, "w", encoding="utf-8")
            handle.write(_dump_line(versioned({
                "type": HEADER,
                "results_format": RESULTS_FORMAT,
                "shard": shard,
                "shards": shards,
                "meta": self.meta,
            })))
            self._handles.append(handle)

    def emit(self, index: int, key: str,
             outcome: AppReport | AppFailure) -> None:
        """Append one finished app's outcome to its shard."""
        if self._closed:
            raise ResultShardError("writer already finalized")
        kind = QUARANTINE if isinstance(outcome, AppFailure) else REPORT
        shard = index % self.shards
        self._handles[shard].write(_dump_line({
            "type": OUTCOME,
            "index": index,
            "key": key,
            "kind": kind,
            "doc": outcome.to_dict(),
        }))
        self._counts[shard] += 1

    def close(self) -> None:
        """Finalize every shard atomically."""
        if self._closed:
            return
        self._closed = True
        for shard, handle in enumerate(self._handles):
            handle.write(_dump_line({
                "type": FOOTER,
                "records": self._counts[shard],
            }))
            handle.flush()
            os.fsync(handle.fileno())
            handle.close()
            final = os.path.join(self.out_dir, shard_name(shard))
            os.replace(handle.name, final)
        # the renames become durable with the directory entry
        dir_fd = os.open(self.out_dir, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def abort(self) -> None:
        """Drop the temporaries (crash path; finalized shards stay)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            handle.close()
            try:
                os.remove(handle.name)
            except FileNotFoundError:  # pragma: no cover
                pass

    def __enter__(self) -> "ShardedResultWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


# ---------------------------------------------------------------------------
# reading & merging
# ---------------------------------------------------------------------------


def _parse_outcome(record: dict[str, Any], path: str,
                   ) -> tuple[int, str, AppReport | AppFailure]:
    doc = record["doc"]
    if record["kind"] == QUARANTINE:
        outcome: AppReport | AppFailure = AppFailure.from_dict(doc)
    elif record["kind"] == REPORT:
        outcome = AppReport.from_dict(doc)
    else:
        raise ResultShardError(
            f"{path}: unknown outcome kind {record['kind']!r}")
    return record["index"], record["key"], outcome


def iter_shard(path: str) -> Iterator[
        tuple[int, str, AppReport | AppFailure]]:
    """Yield ``(index, key, outcome)`` from one finalized shard,
    validating header, footer, and record count."""
    records = 0
    saw_footer = False
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ResultShardError(
                    f"{path}:{lineno}: malformed NDJSON line"
                ) from exc
            kind = record.get("type")
            if lineno == 1:
                if kind != HEADER:
                    raise ResultShardError(
                        f"{path}: missing shard header")
                if record.get("results_format") != RESULTS_FORMAT:
                    raise ResultShardError(
                        f"{path}: results_format "
                        f"{record.get('results_format')!r} != "
                        f"{RESULTS_FORMAT}")
                continue
            if saw_footer:
                raise ResultShardError(
                    f"{path}:{lineno}: records after footer")
            if kind == FOOTER:
                saw_footer = True
                if record.get("records") != records:
                    raise ResultShardError(
                        f"{path}: footer count "
                        f"{record.get('records')!r} != {records} "
                        f"records read")
                continue
            if kind != OUTCOME:
                raise ResultShardError(
                    f"{path}:{lineno}: unknown record type {kind!r}")
            records += 1
            yield _parse_outcome(record, path)
    if not saw_footer:
        raise ResultShardError(
            f"{path}: no footer -- shard was never finalized")


def read_meta(out_dir: str) -> dict[str, Any] | None:
    """The run meta stamped into *out_dir*'s shards, or ``None`` for
    a directory without finalized shards.  Raises
    :class:`ResultShardError` when shards disagree (spliced runs) or
    the shard set is incomplete."""
    paths = shard_paths(out_dir)
    if not paths:
        return None
    meta: dict[str, Any] | None = None
    shards_expected: int | None = None
    seen: set[int] = set()
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            line = handle.readline()
        try:
            header = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ResultShardError(
                f"{path}: malformed shard header") from exc
        if header.get("type") != HEADER:
            raise ResultShardError(f"{path}: missing shard header")
        if meta is None:
            meta = header.get("meta")
            shards_expected = header.get("shards")
        elif header.get("meta") != meta:
            raise ResultShardError(
                f"{path}: shard belongs to a different run "
                f"({header.get('meta')!r} != {meta!r})")
        seen.add(header.get("shard"))
    if shards_expected is None or seen != set(range(shards_expected)):
        raise ResultShardError(
            f"{out_dir}: incomplete shard set ({sorted(seen)} of "
            f"{shards_expected} expected)")
    return meta


def has_tmp_shards(out_dir: str) -> bool:
    """True when *out_dir* holds torn (unfinalized) shard files."""
    try:
        names = os.listdir(out_dir)
    except FileNotFoundError:
        return False
    return any(name.startswith(_SHARD_PREFIX)
               and name.endswith(_TMP_SUFFIX) for name in names)


def iter_results(out_dir: str) -> Iterator[
        tuple[int, str, AppReport | AppFailure]]:
    """Stream every outcome of a finalized run in global index
    order, holding one record per shard in memory (k-way merge over
    the index-ascending shards)."""
    paths = shard_paths(out_dir)
    if not paths:
        raise ResultShardError(
            f"{out_dir}: no finalized result shards")
    read_meta(out_dir)  # validates completeness + one-run property
    yield from heapq.merge(*(iter_shard(path) for path in paths),
                           key=lambda rec: rec[0])


__all__ = [
    "RESULTS_FORMAT",
    "HEADER",
    "OUTCOME",
    "FOOTER",
    "REPORT",
    "QUARANTINE",
    "ResultShardError",
    "ShardedResultWriter",
    "shard_name",
    "shard_paths",
    "iter_shard",
    "iter_results",
    "read_meta",
    "has_tmp_shards",
]
